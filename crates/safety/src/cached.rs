//! Safety analyses in the pipeline's content-hash stage cache.
//!
//! A project's [`SafetyAnalysis`] is published as **one** artifact in the
//! process-wide lock-striped `PipelineCache`, under its own stage namespace
//! [`SAFETY_STAGE`]. The key chains from the project's *history-stage* key
//! (chain link 5 of the ingestion pipeline) through
//! [`SAFETY_LOGIC_VERSION`], so the PR-3 invalidation discipline extends
//! for free: editing a card re-fingerprints its history artifact, which
//! re-fingerprints the safety analysis built on it. The lint `H006` audit
//! restates this derivation independently and flags any resident analysis
//! whose key it cannot reproduce.
//!
//! Builds are quarantined exactly like pipeline stages: a build that
//! panics (e.g. via an injected `safety:` fault) never publishes a cache
//! entry — the panic propagates after bumping the namespace's quarantine
//! counter, and the next caller sees a plain retryable miss.

use std::ops::Deref;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use schemachron_corpus::materialize::materialize;
use schemachron_corpus::pipeline::{
    derive_key, history_stage_key, insert_stage_artifact, record_stage_quarantine, stage_artifact,
    StageKey,
};
use schemachron_corpus::Card;
use schemachron_fault as fault;

use crate::analyze::{analyze, SafetyAnalysis};

/// The safety subsystem's stage-cache namespace.
pub const SAFETY_STAGE: &str = "safety";

/// Logic version of the analysis, mixed into every safety key. Bump it when
/// the classifier, the inverse synthesizer or the lineage tracker changes
/// so stale cached analyses can never be served.
pub const SAFETY_LOGIC_VERSION: u32 = 1;

/// A cached safety analysis plus the provenance of its own cache key, so
/// the lint auditor can re-derive the key from first principles.
#[derive(Debug)]
pub struct SafetyArtifact {
    /// The history-stage key of the project the analysis was built from.
    pub history_key: StageKey,
    /// The analysis itself.
    pub analysis: SafetyAnalysis,
}

impl Deref for SafetyArtifact {
    type Target = SafetyAnalysis;

    fn deref(&self) -> &SafetyAnalysis {
        &self.analysis
    }
}

/// Derives the cache key of a project's safety analysis: the
/// stage-chaining hash of this namespace's identity over the history key.
/// Deterministic and content-addressed — any change to the card, the seed,
/// an upstream stage version or the safety logic lands on a different key.
pub fn safety_key(history_key: StageKey) -> StageKey {
    derive_key(SAFETY_STAGE, SAFETY_LOGIC_VERSION, history_key)
}

/// The safety analysis for a corpus card, served from the stage cache when
/// already built. The analysis is a pure function of the card's
/// materialized DDL commits, so every caller at any `--jobs` level gets a
/// byte-identical rendering.
///
/// # Panics
/// Propagates a panicking build (including injected `safety:` faults)
/// after recording a quarantine — never after publishing an entry.
pub fn safety_for(card: &Card, seed: u64) -> Arc<SafetyArtifact> {
    let history_key = history_stage_key(card, seed);
    let key = safety_key(history_key);
    if let Some(hit) = stage_artifact::<SafetyArtifact>(SAFETY_STAGE, key) {
        return hit;
    }
    let started = Instant::now();
    let built = catch_unwind(AssertUnwindSafe(|| {
        fault::checkpoint_point(&format!("{SAFETY_STAGE}:{key:016x}"));
        let project = materialize(card, seed);
        analyze(&card.name, &project.ddl_commits)
    }));
    match built {
        Ok(analysis) => {
            let artifact = Arc::new(SafetyArtifact {
                history_key,
                analysis,
            });
            insert_stage_artifact(SAFETY_STAGE, key, artifact.clone(), started.elapsed());
            artifact
        }
        Err(payload) => {
            // Quarantine: the key was never published, so the next caller
            // gets a clean retryable miss instead of a poisoned artifact.
            record_stage_quarantine(SAFETY_STAGE);
            resume_unwind(payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_corpus::cards::all_cards;
    use schemachron_corpus::Corpus;

    #[test]
    fn safety_keys_chain_from_the_history_key() {
        let k = safety_key(7);
        assert_ne!(k, safety_key(8), "history key must matter");
        assert_eq!(k, safety_key(7), "keys are deterministic");
    }

    #[test]
    fn warm_lookup_returns_the_cached_allocation() {
        // A private seed so this test never races others on the same keys.
        let seed = 71_309;
        let cards: Vec<Card> = all_cards().into_iter().take(2).collect();
        let corpus = Corpus::from_cards(cards, seed, 1);
        let project = &corpus.projects()[0];
        let cold = safety_for(&project.card, seed);
        let warm = safety_for(&project.card, seed);
        assert!(Arc::ptr_eq(&cold, &warm), "second lookup must be a cache hit");
        assert_eq!(cold.project, project.card.name);
        assert_eq!(cold.history_key, history_stage_key(&project.card, seed));
        assert!(cold.versions > 0, "corpus projects have schema versions");
    }
}
