//! Materializing a project card into a real DDL commit history.
//!
//! Each scheduled month becomes one migration script whose statements cause
//! **exactly** the budgeted number of attribute-level changes when measured
//! by `schemachron-model::diff`. The mixture of statement forms follows the
//! §6.3 observations: change is biased towards expansion, and performed
//! mostly at table granularity (whole tables added/dropped) rather than by
//! restructuring surviving tables.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use schemachron_history::Date;

use crate::spec::Card;

/// A fully materialized synthetic project: dated DDL scripts plus a source
/// heartbeat, ready for `ProjectHistoryBuilder` ingestion.
#[derive(Clone, Debug)]
pub struct MaterializedProject {
    /// Project name (from the card).
    pub name: String,
    /// Dated migration scripts, in chronological order.
    pub ddl_commits: Vec<(Date, String)>,
    /// Dated source-activity events (lines changed).
    pub source_commits: Vec<(Date, f64)>,
}

/// Materializes a card deterministically for a given corpus seed.
pub fn materialize(card: &Card, seed: u64) -> MaterializedProject {
    let mut rng = StdRng::seed_from_u64(seed ^ name_hash(&card.name));
    let start = start_date(&card.name, seed);
    let schedule = card.schedule();

    let mut state = SchemaState::new();
    let mut ddl_commits = Vec::with_capacity(schedule.events.len());
    for &(month, units) in &schedule.events {
        let sql = state.emit_month(units, card.maintenance_bias, &mut rng);
        ddl_commits.push((month_date(start, month, 10), sql));
    }

    // Source activity: development happens over the whole PUP; the first
    // and last months are always active (they pin the project lifespan).
    let mut source_commits = Vec::with_capacity(card.duration as usize);
    for m in 0..card.duration {
        let pinned = m == 0 || m == card.duration - 1;
        if pinned || rng.random_bool(0.7) {
            let lines = rng.random_range(20.0..800.0);
            source_commits.push((month_date(start, m, 20), lines));
        }
    }

    MaterializedProject {
        name: card.name.clone(),
        ddl_commits,
        source_commits,
    }
}

fn name_hash(name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms.
    schemachron_hash::fnv1a_once(name.as_bytes())
}

fn start_date(name: &str, seed: u64) -> Date {
    let k = (name_hash(name) ^ seed) % 72; // spread starts over six years
    let year = 2012 + (k / 12) as i32;
    let month = (k % 12) as u8 + 1;
    Date::new(year, month, 1)
}

fn month_date(start: Date, offset: u32, day: u8) -> Date {
    let m = start.month_id().plus(offset as i32);
    Date::new(m.year(), m.month(), day)
}

/// The materializer's mirror of the evolving schema: enough state to emit
/// DDL whose measured change count is exact.
struct SchemaState {
    tables: Vec<TableState>,
    next_table: usize,
    next_col: usize,
}

struct TableState {
    name: String,
    /// `(column name, type index)` — the type index keys into [`TYPES`].
    columns: Vec<(String, usize)>,
    has_pk: bool,
}

/// The type palette; `MODIFY` picks a different index to guarantee a
/// logical type change.
const TYPES: [&str; 7] = [
    "INT",
    "BIGINT",
    "VARCHAR(64)",
    "VARCHAR(255)",
    "TEXT",
    "DECIMAL(10, 2)",
    "TIMESTAMP",
];

const TABLE_STEMS: [&str; 12] = [
    "customers",
    "orders",
    "invoices",
    "products",
    "sessions",
    "audit_log",
    "settings",
    "tags",
    "payments",
    "messages",
    "accounts",
    "reports",
];

const COLUMN_STEMS: [&str; 12] = [
    "name",
    "status",
    "amount",
    "created_at",
    "updated_at",
    "owner_id",
    "notes",
    "kind",
    "priority",
    "email",
    "token",
    "flags",
];

impl SchemaState {
    fn new() -> Self {
        SchemaState {
            tables: Vec::new(),
            next_table: 0,
            next_col: 0,
        }
    }

    fn fresh_table_name(&mut self) -> String {
        let stem = TABLE_STEMS[self.next_table % TABLE_STEMS.len()];
        let n = self.next_table / TABLE_STEMS.len();
        self.next_table += 1;
        if n == 0 {
            stem.to_owned()
        } else {
            format!("{stem}_{n}")
        }
    }

    fn fresh_column_name(&mut self) -> String {
        let stem = COLUMN_STEMS[self.next_col % COLUMN_STEMS.len()];
        let n = self.next_col / COLUMN_STEMS.len();
        self.next_col += 1;
        if n == 0 {
            stem.to_owned()
        } else {
            format!("{stem}_{n}")
        }
    }

    /// Emits one month's migration script causing exactly `units` attribute
    /// changes.
    ///
    /// Month-over-month diffs collapse multiple edits to the same object:
    /// a table created and maintained in the same month diffs as a plain
    /// creation, and a column modified twice counts once. To keep the
    /// budget exact, maintenance is restricted to objects that existed at
    /// the **start** of the month, each touched at most once ([`MonthCtx`]).
    fn emit_month(&mut self, units: u32, maintenance_bias: f64, rng: &mut StdRng) -> String {
        let mut sql = String::from("-- auto-generated migration\n");
        let mut ctx = MonthCtx::snapshot(self);
        let mut remaining = units;
        while remaining > 0 {
            let mut done = 0;
            if rng.random_bool(maintenance_bias) {
                done = self.emit_maintenance(&mut sql, remaining, rng, &mut ctx);
            }
            if done == 0 {
                done = self.emit_expansion(&mut sql, remaining, rng, &mut ctx);
            }
            remaining -= done;
        }
        // A pinch of realistic noise the parser must skip.
        if rng.random_bool(0.3) {
            sql.push_str("INSERT INTO settings VALUES (1, 'seed');\n");
        }
        sql
    }

    /// Expansion: prefer whole-table additions (§6.3), fall back to column
    /// injections. Returns the number of attribute changes caused.
    fn emit_expansion(
        &mut self,
        sql: &mut String,
        remaining: u32,
        rng: &mut StdRng,
        ctx: &mut MonthCtx,
    ) -> u32 {
        let prefer_table = remaining >= 3 && (self.tables.is_empty() || rng.random_bool(0.65));
        if prefer_table {
            let cols = rng.random_range(3..=8usize).min(remaining as usize);
            let name = self.fresh_table_name();
            let mut t = TableState {
                name: name.clone(),
                columns: Vec::new(),
                has_pk: true,
            };
            // Reference an existing table from the second column sometimes:
            // FKs never change the attribute-change count (the referencing
            // column is *born*, which takes precedence), but they give the
            // corpus the foreign-key texture real schemata have.
            let fk_target = if cols >= 2 && !self.tables.is_empty() && rng.random_bool(0.4) {
                Some(
                    self.tables[rng.random_range(0..self.tables.len())]
                        .name
                        .clone(),
                )
            } else {
                None
            };
            sql.push_str(&format!("CREATE TABLE {name} (\n"));
            for i in 0..cols {
                let (cname, ty_idx) = if i == 0 {
                    ("id".to_owned(), 0)
                } else {
                    (self.fresh_column_name(), rng.random_range(0..TYPES.len()))
                };
                if i == 1 {
                    if let Some(target) = &fk_target {
                        sql.push_str(&format!("  {cname} INT REFERENCES {target} (id),\n"));
                        t.columns.push((cname, 0));
                        continue;
                    }
                }
                let not_null = if i == 0 { " NOT NULL" } else { "" };
                sql.push_str(&format!("  {cname} {}{not_null},\n", TYPES[ty_idx]));
                t.columns.push((cname, ty_idx));
            }
            sql.push_str("  PRIMARY KEY (id)\n);\n");
            self.tables.push(t);
            cols as u32
        } else if self.tables.is_empty() {
            // remaining < 3 and nothing exists yet: a tiny table.
            let name = self.fresh_table_name();
            let mut t = TableState {
                name: name.clone(),
                columns: Vec::new(),
                has_pk: false,
            };
            sql.push_str(&format!("CREATE TABLE {name} (\n"));
            for i in 0..remaining {
                let cname = if i == 0 {
                    "id".to_owned()
                } else {
                    self.fresh_column_name()
                };
                let sep = if i + 1 == remaining { "\n" } else { ",\n" };
                sql.push_str(&format!("  {cname} INT{sep}"));
                t.columns.push((cname, 0));
            }
            sql.push_str(");\n");
            self.tables.push(t);
            remaining
        } else {
            // Inject one column into a random table.
            let ti = rng.random_range(0..self.tables.len());
            let cname = self.fresh_column_name();
            let ty_idx = rng.random_range(0..TYPES.len());
            let tname = self.tables[ti].name.clone();
            sql.push_str(&format!(
                "ALTER TABLE {tname} ADD COLUMN {cname} {};\n",
                TYPES[ty_idx]
            ));
            self.tables[ti].columns.push((cname, ty_idx));
            ctx.expanded.push(tname);
            1
        }
    }

    /// Maintenance: whole-table drops when the budget allows, otherwise
    /// column ejections, type changes or key updates — always against
    /// month-start objects untouched this month (see [`MonthCtx`]).
    /// Returns the changes caused (0 when no applicable op exists — the
    /// caller then falls back to expansion).
    fn emit_maintenance(
        &mut self,
        sql: &mut String,
        remaining: u32,
        rng: &mut StdRng,
        ctx: &mut MonthCtx,
    ) -> u32 {
        // Whole-table drop (the §6.3-preferred granule), if one fits.
        if rng.random_bool(0.4) {
            if let Some(ti) = self
                .tables
                .iter()
                .position(|t| t.columns.len() as u32 <= remaining && ctx.droppable(t))
            {
                let t = self.tables.remove(ti);
                sql.push_str(&format!("DROP TABLE {};\n", t.name));
                let dropped = t.columns.len() as u32;
                ctx.maintained_tables.push(t.name);
                return dropped;
            }
        }
        let Some(ti) = ctx.pick_maintainable(&self.tables, rng) else {
            return 0;
        };
        match rng.random_range(0..3u8) {
            // Eject the last untouched month-start column (keep ≥ 2 so the
            // table stays meaningful).
            0 if self.tables[ti].columns.len() > 2 => {
                let Some(ci) = ctx.pick_column(&self.tables[ti], true) else {
                    return 0;
                };
                let (cname, _) = self.tables[ti].columns.remove(ci);
                let tname = self.tables[ti].name.clone();
                sql.push_str(&format!("ALTER TABLE {tname} DROP COLUMN {cname};\n"));
                ctx.touch(&tname, &cname);
                1
            }
            // Change a column's data type.
            1 => {
                let Some(ci) = ctx.pick_column(&self.tables[ti], false) else {
                    return 0;
                };
                let (cname, old_ty) = self.tables[ti].columns[ci].clone();
                let new_ty = (old_ty + 1 + rng.random_range(0..TYPES.len() - 1)) % TYPES.len();
                let tname = self.tables[ti].name.clone();
                sql.push_str(&format!(
                    "ALTER TABLE {tname} MODIFY COLUMN {cname} {};\n",
                    TYPES[new_ty]
                ));
                self.tables[ti].columns[ci].1 = new_ty;
                ctx.touch(&tname, &cname);
                1
            }
            // Toggle a single-column primary key (the key column must be a
            // month-start column untouched so far).
            _ => {
                let t = &mut self.tables[ti];
                let tname = t.name.clone();
                let key_col = t.columns[0].0.clone();
                if !ctx.is_fresh(&tname, &key_col) {
                    return 0;
                }
                if t.has_pk {
                    sql.push_str(&format!("ALTER TABLE {tname} DROP PRIMARY KEY;\n"));
                    t.has_pk = false;
                } else {
                    sql.push_str(&format!(
                        "ALTER TABLE {tname} ADD PRIMARY KEY ({key_col});\n"
                    ));
                    t.has_pk = true;
                }
                ctx.touch(&tname, &key_col);
                1
            }
        }
    }
}

/// Per-month bookkeeping that keeps the change budget exact under
/// month-granule diffing: maintenance may only touch objects that existed
/// at the start of the month, and each object at most once.
struct MonthCtx {
    /// `(table, column)` pairs existing at month start.
    baseline_cols: Vec<(String, String)>,
    /// Tables existing at month start.
    baseline_tables: Vec<String>,
    /// `(table, column)` pairs already maintained this month.
    touched: Vec<(String, String)>,
    /// Tables that received maintenance this month (cannot be dropped).
    maintained_tables: Vec<String>,
    /// Tables that received injected columns this month (cannot be dropped).
    expanded: Vec<String>,
}

impl MonthCtx {
    fn snapshot(state: &SchemaState) -> MonthCtx {
        MonthCtx {
            baseline_cols: state
                .tables
                .iter()
                .flat_map(|t| t.columns.iter().map(|(c, _)| (t.name.clone(), c.clone())))
                .collect(),
            baseline_tables: state.tables.iter().map(|t| t.name.clone()).collect(),
            touched: Vec::new(),
            maintained_tables: Vec::new(),
            expanded: Vec::new(),
        }
    }

    fn in_baseline(&self, table: &str) -> bool {
        self.baseline_tables.iter().any(|t| t == table)
    }

    fn is_fresh(&self, table: &str, column: &str) -> bool {
        self.baseline_cols
            .iter()
            .any(|(t, c)| t == table && c == column)
            && !self.touched.iter().any(|(t, c)| t == table && c == column)
    }

    fn touch(&mut self, table: &str, column: &str) {
        self.touched.push((table.to_owned(), column.to_owned()));
        if !self.maintained_tables.iter().any(|t| t == table) {
            self.maintained_tables.push(table.to_owned());
        }
    }

    /// A table can be dropped only if it existed at month start and nothing
    /// about it changed this month (no injected columns, no maintenance).
    fn droppable(&self, t: &TableState) -> bool {
        self.in_baseline(&t.name)
            && !self.expanded.iter().any(|x| x == &t.name)
            && !self.maintained_tables.iter().any(|x| x == &t.name)
    }

    /// Picks a month-start table that still has a fresh column to maintain.
    fn pick_maintainable(&self, tables: &[TableState], rng: &mut StdRng) -> Option<usize> {
        let candidates: Vec<usize> = tables
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                self.in_baseline(&t.name)
                    && t.columns.iter().any(|(c, _)| self.is_fresh(&t.name, c))
            })
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.random_range(0..candidates.len())])
        }
    }

    /// Picks a fresh month-start column of `t`; when `skip_first` the
    /// leading (key) column is preserved.
    fn pick_column(&self, t: &TableState, skip_first: bool) -> Option<usize> {
        let start = usize::from(skip_first);
        (start..t.columns.len())
            .rev()
            .find(|&ci| self.is_fresh(&t.name, &t.columns[ci].0))
    }
}

/// Materializes a card as **full snapshot dumps** instead of migration
/// scripts: each commit carries the complete schema as of that month
/// (`schema.sql`-style histories, the other ingestion mode real miners
/// meet). The underlying evolution is identical to [`materialize`]'s.
pub fn materialize_snapshots(card: &Card, seed: u64) -> MaterializedProject {
    let migrations = materialize(card, seed);
    let mut builder = schemachron_ddl::SchemaBuilder::new();
    let ddl_commits = migrations
        .ddl_commits
        .iter()
        .map(|(date, sql)| {
            builder.apply_script(sql);
            (
                *date,
                schemachron_model::render_schema_sql(builder.schema()),
            )
        })
        .collect();
    MaterializedProject {
        name: migrations.name,
        ddl_commits,
        source_commits: migrations.source_commits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_core::Pattern;
    use schemachron_history::ProjectHistoryBuilder;

    fn test_card() -> Card {
        Card {
            name: "mat-test".into(),
            pattern: Pattern::QuantumSteps,
            exception: false,
            duration: 30,
            birth_month: 2,
            top_month: 12,
            agm: 2,
            birth_frac: 0.5,
            total_units: 40,
            tail_units: 0,
            tail_months: 0,
            maintenance_bias: 0.2,
        }
    }

    #[test]
    fn measured_activity_matches_schedule_exactly() {
        let card = test_card();
        let mat = materialize(&card, 42);
        let mut b = ProjectHistoryBuilder::new(&card.name);
        for (d, sql) in &mat.ddl_commits {
            b.migration(*d, sql.clone());
        }
        for (d, lines) in &mat.source_commits {
            b.source_commit(*d, *lines);
        }
        let p = b.build();
        assert_eq!(p.month_count() as u32, card.duration);
        assert_eq!(p.schema_total() as u32, card.total_units);
        assert_eq!(p.schema_birth_index(), Some(card.birth_month as usize));

        // Per-month activity equals the schedule.
        let schedule = card.schedule();
        for (m, u) in &schedule.events {
            assert_eq!(
                p.schema_heartbeat().values()[*m as usize] as u32,
                *u,
                "month {m}"
            );
        }
    }

    #[test]
    fn determinism_per_seed() {
        let card = test_card();
        let a = materialize(&card, 7);
        let b = materialize(&card, 7);
        assert_eq!(a.ddl_commits, b.ddl_commits);
        let c = materialize(&card, 8);
        assert_ne!(
            a.ddl_commits, c.ddl_commits,
            "different seeds should vary the DDL mixture"
        );
    }

    #[test]
    fn maintenance_bias_produces_maintenance_changes() {
        let mut card = test_card();
        card.maintenance_bias = 0.5;
        card.total_units = 120;
        card.agm = 5;
        let mat = materialize(&card, 3);
        let mut b = ProjectHistoryBuilder::new(&card.name);
        for (d, sql) in &mat.ddl_commits {
            b.migration(*d, sql.clone());
        }
        let p = b.build();
        assert_eq!(p.schema_total() as u32, 120);
        assert!(p.maintenance_total() > 0, "expected some maintenance");
        assert!(
            p.expansion_total() > p.maintenance_total(),
            "expansion must dominate (§6.3)"
        );
    }

    #[test]
    fn parser_diagnostics_are_clean() {
        let card = test_card();
        let mat = materialize(&card, 42);
        for (_, sql) in &mat.ddl_commits {
            let (_, diags) = schemachron_ddl::parse_statements(sql);
            assert!(
                diags.iter().all(|d| !d.is_error()),
                "generated DDL must parse: {diags:?}\n{sql}"
            );
        }
    }

    #[test]
    fn start_dates_spread_but_deterministic() {
        let c = test_card();
        assert_eq!(start_date(&c.name, 1), start_date(&c.name, 1));
    }
}
