//! Work scheduling for corpus ingestion.
//!
//! Every corpus project is ingested independently — the materializer seeds
//! its PRNG per project name (`seed ^ name_hash(name)`), so no project's
//! output depends on any other's. That makes ingestion embarrassingly
//! parallel, and this module provides the fan-out: [`par_map`] distributes
//! items over scoped worker threads with an atomic work-stealing-style
//! index counter, then reassembles results **in input order**, so parallel
//! and serial runs produce identical corpora.
//!
//! The worker count is resolved by [`effective_jobs`]:
//!
//! 1. a process-wide override installed with [`set_jobs`] (the CLI's
//!    `--jobs` flag),
//! 2. else the `SCHEMACHRON_JOBS` environment variable,
//! 3. else [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide jobs override; `0` means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide worker-count override (`None` clears it),
/// taking precedence over `SCHEMACHRON_JOBS` and auto-detection.
pub fn set_jobs(jobs: Option<NonZeroUsize>) {
    JOBS_OVERRIDE.store(jobs.map_or(0, NonZeroUsize::get), Ordering::Relaxed);
}

/// The worker count corpus generation will use: the [`set_jobs`] override,
/// else `SCHEMACHRON_JOBS`, else available parallelism (min 1).
pub fn effective_jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("SCHEMACHRON_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Maps `f` over `items` on `jobs` scoped worker threads, preserving input
/// order in the output.
///
/// Workers pull the next unclaimed index from a shared atomic counter
/// (self-balancing: a worker stuck on an expensive project simply claims
/// fewer items), so the schedule adapts to uneven item costs without any
/// partitioning heuristics. With `jobs <= 1` or fewer than two items the
/// map runs inline on the caller's thread.
///
/// # Panics
///
/// Propagates a panic from `f`; remaining items may be skipped.
pub fn par_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if jobs <= 1 || items.len() < 2 {
        return items.into_iter().map(f).collect();
    }

    let workers = jobs.min(items.len());
    // Wrap the items so workers can claim them by index without moving the
    // vector: each slot is taken exactly once (the counter hands out each
    // index to exactly one worker).
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let next = AtomicUsize::new(0);

    let mut results: Vec<Option<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= slots.len() {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("corpus slot lock")
                            .take()
                            .expect("each slot is claimed exactly once");
                        out.push((i, f(item)));
                    }
                    out
                })
            })
            .collect();

        let mut merged: Vec<Option<R>> = (0..slots.len()).map(|_| None).collect();
        for h in handles {
            for (i, r) in h.join().expect("corpus worker panicked") {
                merged[i] = Some(r);
            }
        }
        merged
    });

    results
        .iter_mut()
        .map(|slot| slot.take().expect("every index was produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(items, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..64).collect();
        let serial = par_map(items.clone(), 1, |i| i.wrapping_mul(0x9e37_79b9));
        let parallel = par_map(items, 5, |i| i.wrapping_mul(0x9e37_79b9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_degenerate_sizes() {
        assert_eq!(par_map(Vec::<u8>::new(), 4, |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![7], 4, |x| x + 1), vec![8]);
        assert_eq!(par_map(vec![1, 2], 16, |x| x * 2), vec![2, 4]);
    }

    #[test]
    fn override_beats_env_and_detection() {
        set_jobs(NonZeroUsize::new(3));
        assert_eq!(effective_jobs(), 3);
        set_jobs(None);
        assert!(effective_jobs() >= 1);
    }
}
