#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-corpus
//!
//! A **calibrated synthetic corpus** of 151 schema histories standing in for
//! the study's GitHub-mined dataset (\[42\]/\[45\] of the paper), which is not
//! available offline.
//!
//! Every project is described by a [`Card`]: a concrete plan
//! (duration, birth month, top-band month, active growth months, volume
//! split) derived from the paper's published aggregates — pattern
//! populations (Fig. 4), the birth-month joint distribution (Fig. 7), the
//! Table 1 label marginals, the Table 2 exception counts and the §6.1
//! per-pattern activity medians. The plan is then **materialized into real
//! DDL commit histories** ([`materialize`]) and ingested through the full
//! pipeline (`schemachron-ddl` → `schemachron-model` → `schemachron-history`),
//! so every downstream number is *measured*, not asserted.
//!
//! Randomness (seeded, deterministic) affects only inconsequential detail:
//! table/column names, the mixture of DDL statement forms, source-line
//! volumes. The timing skeleton of each project is fixed by its card.
//!
//! ```
//! use schemachron_corpus::Corpus;
//!
//! let corpus = Corpus::generate(42);
//! assert_eq!(corpus.projects().len(), 151);
//! // Two thirds of the corpus shows the paper's "aversion to change":
//! let quick_or_dead = corpus.projects().iter()
//!     .filter(|p| p.assigned.family() == schemachron_core::Family::BeQuickOrBeDead)
//!     .count();
//! assert_eq!(quick_or_dead, 97);
//! ```

pub mod cards;
pub mod corpus;
pub mod io;
pub mod materialize;
pub mod parallel;
pub mod pipeline;
pub mod random;
pub mod spec;

pub use corpus::{summarize_cards, Corpus, CorpusProject, ProjectSummary};
pub use io::{load_project_dir, verify_project_dir, CorruptCorpus, LoadError};
pub use parallel::{
    effective_jobs, effective_workers, par_map, par_map_isolated, set_jobs, MapOutcome,
    WorkerFailure, WorkerFailures, CLAIM_CHUNK, MAX_ATTEMPTS, MIN_ITEMS_PER_WORKER,
};
pub use pipeline::{StageStats, StageTrace};
pub use random::{random_card, random_cards};
pub use spec::{Card, Schedule, SpecError};
