#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-ddl
//!
//! A tolerant, multi-dialect SQL **DDL** lexer, parser and schema builder.
//!
//! This crate is the measurement instrument of the reproduction: real-world
//! schema histories are sequences of `.sql` files (full dumps or migration
//! scripts) written in a mixture of MySQL, PostgreSQL and SQLite flavors,
//! full of noise (inserts, comments, tuning statements). A schema-history
//! miner must extract the *logical* schema from each version without choking
//! on the noise — exactly what the toolchain behind the EDBT 2025 study does.
//!
//! ## Design
//!
//! * [`lexer`] turns text into tokens, handling `--`, `#` and `/* */`
//!   comments, backtick/double-quote/bracket-quoted identifiers, single-quote
//!   strings with doubling and backslash escapes, and PostgreSQL
//!   dollar-quoted strings.
//! * [`parser`] parses the statements that matter for the logical level
//!   (`CREATE TABLE`, `ALTER TABLE`, `DROP TABLE`, `CREATE/DROP VIEW`,
//!   `RENAME TABLE`) into an [`ast`], **recovers at statement boundaries**,
//!   and reports everything else as skipped with a [`Diagnostic`].
//! * [`builder`] applies parsed statements to a
//!   [`schemachron_model::Schema`], supporting both *snapshot* ingestion
//!   (each file is a full dump, [`parse_schema`]) and *migration* ingestion
//!   (statements are applied to a running schema, [`SchemaBuilder`]).
//!
//! ## Quick example
//!
//! ```
//! let sql = r#"
//!     -- a tiny dump
//!     CREATE TABLE users (
//!         id INT NOT NULL AUTO_INCREMENT,
//!         name VARCHAR(64) DEFAULT 'anonymous',
//!         PRIMARY KEY (id)
//!     ) ENGINE=InnoDB;
//!     INSERT INTO users VALUES (1, 'root'); -- noise, skipped
//! "#;
//! let (schema, diagnostics) = schemachron_ddl::parse_schema(sql);
//! assert_eq!(schema.table_count(), 1);
//! assert_eq!(schema.table("users").unwrap().attribute_count(), 2);
//! assert!(diagnostics.iter().all(|d| !d.is_error()));
//! ```

pub mod ast;
pub mod builder;
pub mod error;
pub mod lexer;
pub mod parser;

mod diagnostics;

pub use builder::{parse_schema, SchemaBuilder};
pub use diagnostics::{Diagnostic, Severity};
pub use error::{DdlError, DdlErrorKind};
pub use parser::{parse_statements, parse_statements_spanned, SpannedStatement};
