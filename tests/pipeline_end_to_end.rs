//! End-to-end integration: raw DDL text in, time-related pattern out.
//!
//! Each test hand-writes a schema history whose *shape* matches one of the
//! paper's patterns and checks the full pipeline (parser → diff →
//! heartbeat → metrics → quantization → classifier) recovers it.

use schemachron::core::metrics::TimeMetrics;
use schemachron::core::quantize::Labels;
use schemachron::core::{classify, Pattern};
use schemachron::history::{Date, ProjectHistory, ProjectHistoryBuilder};

/// A project skeleton: source activity every month over `months`, schema
/// commits at the given `(month, sql)` points.
fn project(months: u32, schema_commits: &[(u32, &str)]) -> ProjectHistory {
    let mut b = ProjectHistoryBuilder::new("e2e");
    let date = |m: u32, day: u8| Date::new(2018 + (m / 12) as i32, (m % 12 + 1) as u8, day);
    for m in 0..months {
        b.source_commit(date(m, 25), 100.0);
    }
    for (m, sql) in schema_commits {
        b.migration(date(*m, 10), *sql);
    }
    b.build()
}

fn pattern_of(p: &ProjectHistory) -> Option<Pattern> {
    let m = TimeMetrics::from_project(p)?;
    classify(&Labels::from_metrics(&m))
}

const BIG_TABLE: &str = "CREATE TABLE core (
    id INT NOT NULL AUTO_INCREMENT,
    name VARCHAR(64) NOT NULL,
    kind VARCHAR(16),
    created TIMESTAMP,
    amount DECIMAL(10,2),
    PRIMARY KEY (id)
);";

#[test]
fn flatliner_from_ddl() {
    let p = project(24, &[(0, BIG_TABLE)]);
    assert_eq!(pattern_of(&p), Some(Pattern::Flatliner));
}

#[test]
fn radical_sign_from_ddl() {
    // Born month 1, small follow-up in month 3, frozen for 4+ years after.
    let p = project(
        60,
        &[
            (1, BIG_TABLE),
            (3, "CREATE TABLE extras (id INT, note TEXT);"),
        ],
    );
    assert_eq!(pattern_of(&p), Some(Pattern::RadicalSign));
}

#[test]
fn sigmoid_from_ddl() {
    // Schema appears mid-life and freezes immediately.
    let p = project(40, &[(20, BIG_TABLE)]);
    assert_eq!(pattern_of(&p), Some(Pattern::Sigmoid));
}

#[test]
fn late_riser_from_ddl() {
    let p = project(40, &[(36, BIG_TABLE)]);
    assert_eq!(pattern_of(&p), Some(Pattern::LateRiser));
}

#[test]
fn quantum_steps_from_ddl() {
    // Born early, two focused steps, top band reached mid-life.
    let p = project(
        40,
        &[
            (1, "CREATE TABLE a (x INT, y INT);"),
            (6, "ALTER TABLE a ADD COLUMN z INT;"),
            (
                12,
                "CREATE TABLE b (id INT, v INT, w INT); ALTER TABLE a ADD COLUMN q INT;",
            ),
        ],
    );
    assert_eq!(pattern_of(&p), Some(Pattern::QuantumSteps));
}

#[test]
fn regularly_curated_from_ddl() {
    // Born early, maintained every other month for most of its life.
    let mut commits: Vec<(u32, String)> = vec![(0, "CREATE TABLE a (c0 INT);".to_owned())];
    for k in 1..=12u32 {
        commits.push((k * 3, format!("ALTER TABLE a ADD COLUMN c{k} INT;")));
    }
    let commits_ref: Vec<(u32, &str)> = commits.iter().map(|(m, s)| (*m, s.as_str())).collect();
    let p = project(40, &commits_ref);
    assert_eq!(pattern_of(&p), Some(Pattern::RegularlyCurated));
}

#[test]
fn siesta_from_ddl() {
    // Born at V0, a very long sleep, late burst of change.
    let p = project(
        50,
        &[
            (0, "CREATE TABLE a (x INT, y INT, z INT);"),
            (45, "CREATE TABLE b (p INT, q INT, r INT, s INT);"),
        ],
    );
    assert_eq!(pattern_of(&p), Some(Pattern::Siesta));
}

#[test]
fn smoking_funnel_from_ddl() {
    // Born mid-life at fair volume, then densely evolved to a mid-life top.
    let mut commits: Vec<(u32, String)> = vec![(
        15,
        "CREATE TABLE a (c1 INT, c2 INT, c3 INT, c4 INT, c5 INT, c6 INT);".to_owned(),
    )];
    for k in 0..5u32 {
        commits.push((16 + k, format!("ALTER TABLE a ADD COLUMN x{k} INT;")));
    }
    commits.push((
        22,
        "CREATE TABLE b (d1 INT, d2 INT, d3 INT, d4 INT);".to_owned(),
    ));
    // A little tail change.
    commits.push((30, "ALTER TABLE b ADD COLUMN late1 INT;".to_owned()));
    let commits_ref: Vec<(u32, &str)> = commits.iter().map(|(m, s)| (*m, s.as_str())).collect();
    let p = project(40, &commits_ref);
    assert_eq!(pattern_of(&p), Some(Pattern::SmokingFunnel));
}

#[test]
fn zero_evolution_project_has_no_metrics() {
    let p = project(20, &[]);
    assert!(TimeMetrics::from_project(&p).is_none());
}

#[test]
fn snapshot_and_migration_agree_on_equivalent_histories() {
    // The same history expressed as snapshots vs migrations must yield the
    // same metrics.
    let date = |m: u32| Date::new(2019, m as u8 + 1, 10);
    let mut snap = ProjectHistoryBuilder::new("snap");
    snap.snapshot(date(0), "CREATE TABLE t (a INT);");
    snap.snapshot(date(5), "CREATE TABLE t (a INT, b INT, c INT);");
    snap.source_commit(date(0), 1.0);
    snap.source_commit(date(11), 1.0);
    let snap = snap.build();

    let mut mig = ProjectHistoryBuilder::new("mig");
    mig.migration(date(0), "CREATE TABLE t (a INT);");
    mig.migration(date(5), "ALTER TABLE t ADD COLUMN b INT, ADD COLUMN c INT;");
    mig.source_commit(date(0), 1.0);
    mig.source_commit(date(11), 1.0);
    let mig = mig.build();

    let ms = TimeMetrics::from_project(&snap).unwrap();
    let mm = TimeMetrics::from_project(&mig).unwrap();
    assert_eq!(ms.total_activity, mm.total_activity);
    assert_eq!(ms.birth_index, mm.birth_index);
    assert_eq!(ms.topband_index, mm.topband_index);
    assert_eq!(
        snap.schema_history().unwrap().last_schema(),
        mig.schema_history().unwrap().last_schema()
    );
}

#[test]
fn noisy_real_world_dump_still_classifies() {
    let dump = r#"
        -- MySQL dump 10.13
        /*!40101 SET NAMES utf8 */;
        SET FOREIGN_KEY_CHECKS=0;
        DROP TABLE IF EXISTS `users`;
        CREATE TABLE `users` (
          `id` int(11) NOT NULL AUTO_INCREMENT,
          `login` varchar(32) NOT NULL DEFAULT '',
          `created_at` timestamp NULL DEFAULT CURRENT_TIMESTAMP,
          PRIMARY KEY (`id`),
          UNIQUE KEY `uq_login` (`login`)
        ) ENGINE=InnoDB AUTO_INCREMENT=1234 DEFAULT CHARSET=utf8;
        LOCK TABLES `users` WRITE;
        INSERT INTO `users` VALUES (1,'admin','2020-01-01 00:00:00');
        UNLOCK TABLES;
    "#;
    let p = project(30, &[(0, dump)]);
    assert_eq!(pattern_of(&p), Some(Pattern::Flatliner));
    let hist = p.schema_history().unwrap();
    let schema = hist.last_schema().unwrap();
    assert_eq!(schema.table_count(), 1);
    assert_eq!(schema.table("users").unwrap().attribute_count(), 3);
}
