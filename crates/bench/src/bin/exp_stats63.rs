//! Regenerates the §6.3 change-type mixture.

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::stats63(&ctx);
    emit(
        "exp_stats63",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
