-- MySQL dump 10.13  Distrib 5.7.33
--
-- Host: localhost    Database: blog
-- ------------------------------------------------------
/*!40101 SET @OLD_CHARACTER_SET_CLIENT=@@CHARACTER_SET_CLIENT */;
/*!40101 SET NAMES utf8 */;
/*!40103 SET TIME_ZONE='+00:00' */;
SET FOREIGN_KEY_CHECKS=0;

DROP TABLE IF EXISTS `wp_users`;
CREATE TABLE `wp_users` (
  `ID` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `user_login` varchar(60) NOT NULL DEFAULT '',
  `user_pass` varchar(255) NOT NULL DEFAULT '',
  `user_email` varchar(100) NOT NULL DEFAULT '',
  `user_registered` datetime NOT NULL DEFAULT '0000-00-00 00:00:00',
  `user_status` int(11) NOT NULL DEFAULT '0',
  `display_name` varchar(250) NOT NULL DEFAULT '',
  PRIMARY KEY (`ID`),
  KEY `user_login_key` (`user_login`),
  KEY `user_email` (`user_email`)
) ENGINE=InnoDB AUTO_INCREMENT=2 DEFAULT CHARSET=utf8mb4;

LOCK TABLES `wp_users` WRITE;
INSERT INTO `wp_users` VALUES (1,'admin','$P$hash','a@b.c','2019-01-01 00:00:00',0,'admin');
UNLOCK TABLES;

DROP TABLE IF EXISTS `wp_posts`;
CREATE TABLE `wp_posts` (
  `ID` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `post_author` bigint(20) unsigned NOT NULL DEFAULT '0',
  `post_date` datetime NOT NULL DEFAULT '0000-00-00 00:00:00',
  `post_content` longtext NOT NULL,
  `post_title` text NOT NULL,
  `post_status` varchar(20) NOT NULL DEFAULT 'publish',
  `comment_count` bigint(20) NOT NULL DEFAULT '0',
  PRIMARY KEY (`ID`),
  KEY `post_author` (`post_author`),
  CONSTRAINT `fk_author` FOREIGN KEY (`post_author`) REFERENCES `wp_users` (`ID`) ON DELETE CASCADE
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4 COMMENT='the posts';

DROP TABLE IF EXISTS `wp_options`;
CREATE TABLE `wp_options` (
  `option_id` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `option_name` varchar(191) NOT NULL DEFAULT '',
  `option_value` longtext NOT NULL,
  `autoload` enum('yes','no') NOT NULL DEFAULT 'yes',
  PRIMARY KEY (`option_id`),
  UNIQUE KEY `option_name` (`option_name`)
) ENGINE=InnoDB;

/*!40101 SET CHARACTER_SET_CLIENT=@OLD_CHARACTER_SET_CLIENT */;
-- Dump completed on 2019-06-01
