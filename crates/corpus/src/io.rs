//! On-disk forms of the corpus: per-project SQL history directories and a
//! metrics CSV — the shapes a real schema-history miner would work with.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use schemachron_history::{Date, IngestMode, ProjectHistory, ProjectHistoryBuilder};

use crate::corpus::Corpus;
use crate::materialize::materialize;

/// Writes every project of the corpus as a directory of dated `.sql`
/// migration scripts plus a `source.csv` of source-code activity:
///
/// ```text
/// out/
///   flatliner-000/
///     0001_2013-04-10.sql
///     source.csv            # date,lines_changed
///   ...
/// ```
pub fn write_corpus_dir(corpus: &Corpus, out: &Path) -> io::Result<()> {
    for p in corpus.projects() {
        let mat = materialize(&p.card, corpus.seed());
        let dir = out.join(&p.card.name);
        fs::create_dir_all(&dir)?;
        for (i, (date, sql)) in mat.ddl_commits.iter().enumerate() {
            let file = dir.join(format!("{:04}_{date}.sql", i + 1));
            fs::write(file, sql)?;
        }
        let mut src = fs::File::create(dir.join("source.csv"))?;
        writeln!(src, "date,lines_changed")?;
        for (date, lines) in &mat.source_commits {
            writeln!(src, "{date},{lines:.0}")?;
        }
    }
    Ok(())
}

/// Loads one project directory written by [`write_corpus_dir`] (or
/// hand-assembled in the same shape) back into a [`ProjectHistory`].
///
/// `mode` selects migration vs snapshot interpretation of the `.sql` files.
pub fn load_project_dir(dir: &Path, mode: IngestMode) -> io::Result<ProjectHistory> {
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "project".to_owned());
    let mut b = ProjectHistoryBuilder::new(name);

    let mut sql_files: Vec<_> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "sql"))
        .collect();
    sql_files.sort();
    for path in sql_files {
        let date = date_from_filename(&path).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("no date in file name: {}", path.display()),
            )
        })?;
        let sql = fs::read_to_string(&path)?;
        match mode {
            IngestMode::Migration => b.migration(date, sql),
            IngestMode::Snapshot => b.snapshot(date, sql),
        };
    }

    let src = dir.join("source.csv");
    if src.exists() {
        for line in fs::read_to_string(src)?.lines().skip(1) {
            let mut parts = line.splitn(2, ',');
            let (Some(d), Some(l)) = (parts.next(), parts.next()) else {
                continue;
            };
            if let (Ok(date), Ok(lines)) = (d.parse::<Date>(), l.trim().parse::<f64>()) {
                b.source_commit(date, lines);
            }
        }
    }
    Ok(b.build())
}

/// Extracts a date from file names like `0001_2013-04-10.sql` or
/// `2013-04-10.sql`.
pub fn date_from_filename(path: &Path) -> Option<Date> {
    let stem = path.file_stem()?.to_string_lossy();
    for part in stem.split(['_', ' ']) {
        if let Ok(d) = part.parse::<Date>() {
            return Some(d);
        }
    }
    None
}

/// Writes the measured per-project metrics as CSV (one row per project),
/// the tabular shape the paper's analyses start from.
pub fn write_metrics_csv(corpus: &Corpus, out: &Path) -> io::Result<()> {
    let mut f = fs::File::create(out)?;
    writeln!(
        f,
        "name,pattern,exception,pup_months,birth_month,birth_pct,birth_volume_pct,\
         topband_month,topband_pct,interval_birth_top_pct,interval_top_end_pct,\
         active_growth_months,total_activity,expansion,maintenance"
    )?;
    for p in corpus.projects() {
        let m = &p.metrics;
        writeln!(
            f,
            "{},{},{},{},{},{:.4},{:.4},{},{:.4},{:.4},{:.4},{},{},{},{}",
            p.card.name,
            p.assigned.name(),
            p.exception,
            m.pup_months,
            m.birth_index,
            m.birth_pct_pup,
            m.birth_volume_pct_total,
            m.topband_index,
            m.topband_pct_pup,
            m.interval_birth_to_top_pct,
            m.interval_top_to_end_pct,
            m.active_growth_months,
            m.total_activity,
            m.expansion_total,
            m.maintenance_total,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("schemachron-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_one_project_through_disk() {
        let corpus = Corpus::generate(42);
        let out = tmp_dir("roundtrip");
        // Keep the test quick: write just the first few projects.
        let small: Vec<_> = corpus.projects().iter().take(3).collect();
        for p in &small {
            let mat = materialize(&p.card, corpus.seed());
            let dir = out.join(&p.card.name);
            fs::create_dir_all(&dir).unwrap();
            for (i, (date, sql)) in mat.ddl_commits.iter().enumerate() {
                fs::write(dir.join(format!("{:04}_{date}.sql", i + 1)), sql).unwrap();
            }
            let mut src = fs::File::create(dir.join("source.csv")).unwrap();
            writeln!(src, "date,lines_changed").unwrap();
            for (date, lines) in &mat.source_commits {
                writeln!(src, "{date},{lines:.0}").unwrap();
            }
        }
        for p in &small {
            let loaded = load_project_dir(&out.join(&p.card.name), IngestMode::Migration).unwrap();
            assert_eq!(
                loaded.month_count(),
                p.history.month_count(),
                "{}",
                p.card.name
            );
            assert_eq!(loaded.schema_total(), p.history.schema_total());
            assert_eq!(loaded.schema_birth_index(), p.history.schema_birth_index());
        }
        let _ = fs::remove_dir_all(&out);
    }

    #[test]
    fn date_extraction_variants() {
        assert_eq!(
            date_from_filename(Path::new("0001_2013-04-10.sql")),
            Some(Date::new(2013, 4, 10))
        );
        assert_eq!(
            date_from_filename(Path::new("2020-01-05.sql")),
            Some(Date::new(2020, 1, 5))
        );
        assert_eq!(date_from_filename(Path::new("schema.sql")), None);
    }

    #[test]
    fn metrics_csv_has_one_row_per_project() {
        let corpus = Corpus::generate(42);
        let out = tmp_dir("csv").join("metrics.csv");
        write_metrics_csv(&corpus, &out).unwrap();
        let text = fs::read_to_string(&out).unwrap();
        assert_eq!(text.lines().count(), 152); // header + 151
        let _ = fs::remove_dir_all(out.parent().unwrap());
    }
}

#[cfg(test)]
mod fault_tolerance_tests {
    use super::*;
    use schemachron_history::IngestMode;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("schemachron-fault-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn corrupted_sql_file_degrades_gracefully() {
        let dir = tmp("corrupt");
        fs::write(dir.join("0001_2020-01-10.sql"), "CREATE TABLE ok (a INT);").unwrap();
        fs::write(
            dir.join("0002_2020-03-10.sql"),
            ");;CREATE TABLEE broken ((((' unterminated",
        )
        .unwrap();
        fs::write(
            dir.join("0003_2020-05-10.sql"),
            "ALTER TABLE ok ADD COLUMN b INT;",
        )
        .unwrap();
        let p = load_project_dir(&dir, IngestMode::Migration).unwrap();
        // The corrupted middle version parses to nothing; the history survives.
        assert_eq!(p.schema_total(), 2.0);
        assert_eq!(
            p.schema_history()
                .unwrap()
                .last_schema()
                .unwrap()
                .table("ok")
                .unwrap()
                .attribute_count(),
            2
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn undated_sql_file_is_an_error() {
        let dir = tmp("undated");
        fs::write(dir.join("schema.sql"), "CREATE TABLE t (a INT);").unwrap();
        let err = load_project_dir(&dir, IngestMode::Migration).unwrap_err();
        assert!(err.to_string().contains("no date"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_source_csv_lines_are_skipped() {
        let dir = tmp("badcsv");
        fs::write(dir.join("0001_2020-01-10.sql"), "CREATE TABLE t (a INT);").unwrap();
        let mut f = fs::File::create(dir.join("source.csv")).unwrap();
        writeln!(f, "date,lines_changed").unwrap();
        writeln!(f, "2020-01-05,100").unwrap();
        writeln!(f, "not-a-date,50").unwrap();
        writeln!(f, "2020-06-05,not-a-number").unwrap();
        writeln!(f, "garbage line without comma").unwrap();
        writeln!(f, "2020-12-05,25").unwrap();
        drop(f);
        let p = load_project_dir(&dir, IngestMode::Migration).unwrap();
        assert_eq!(p.source_heartbeat().total(), 125.0);
        assert_eq!(p.month_count(), 12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_sql_files_are_ignored() {
        let dir = tmp("mixed");
        fs::write(dir.join("0001_2020-01-10.sql"), "CREATE TABLE t (a INT);").unwrap();
        fs::write(dir.join("README.md"), "# notes").unwrap();
        fs::write(dir.join("data.csv"), "x,y").unwrap();
        let p = load_project_dir(&dir, IngestMode::Migration).unwrap();
        assert_eq!(p.schema_total(), 1.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        assert!(load_project_dir(
            std::path::Path::new("/definitely/not/here"),
            IngestMode::Migration
        )
        .is_err());
    }
}
