//! Generic stage machinery: the [`Stage`] trait, content-hash keys, the
//! process-wide stage cache and its hit/miss/wall-time accounting.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

pub(crate) use schemachron_hash::{fnv1a, FNV_OFFSET};

/// Locks a cache mutex, ignoring poisoning: the critical sections below
/// only move plain data, so a panic mid-section cannot leave the map in a
/// logically inconsistent state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A content-hash cache key. Keys are chained: each stage's output key is a
/// hash of its name, its version and its input key, so the key of any
/// artifact transitively fingerprints the whole upstream computation
/// (seed + trait card + every stage version on the path).
pub type StageKey = u64;

/// One typed pipeline step: a pure function from an input artifact to an
/// output artifact, with a stable identity for caching.
///
/// Implementors are stateless unit structs; identity lives in the inherent
/// `NAME`/`VERSION` consts each one carries (exposed here as methods so the
/// trait stays object-light and generic code can reach them).
pub trait Stage<In, Out> {
    /// Stable stage identifier — the cache namespace and counters key.
    fn name(&self) -> &'static str;

    /// Logic version, mixed into the output key. Bump it when the stage's
    /// computation changes so stale cached artifacts can never be served.
    fn version(&self) -> u32;

    /// The computation. Must be pure: same input artifact, same output.
    fn run(&self, input: &In) -> Out;
}

/// Derives a stage's output key from its identity and its input key.
pub fn derive_key(name: &str, version: u32, in_key: StageKey) -> StageKey {
    let h = fnv1a(FNV_OFFSET, name.as_bytes());
    let h = fnv1a(h, &version.to_le_bytes());
    fnv1a(h, &in_key.to_le_bytes())
}

/// Per-call record of which stages hit the cache and which recomputed while
/// building one project. Unlike the global counters (which every concurrent
/// build in the process feeds), a trace belongs to exactly one chain walk,
/// so tests can make exact assertions on it.
#[derive(Clone, Debug, Default)]
pub struct StageTrace {
    entries: Vec<TraceEntry>,
}

/// One consulted stage in a [`StageTrace`].
#[derive(Clone, Copy, Debug)]
pub struct TraceEntry {
    /// The stage name.
    pub stage: &'static str,
    /// Whether the artifact came from the cache (`true`) or was recomputed.
    pub hit: bool,
}

impl StageTrace {
    pub(crate) fn record(&mut self, stage: &'static str, hit: bool) {
        self.entries.push(TraceEntry { stage, hit });
    }

    /// Every consulted stage, in consultation order (downstream-first: the
    /// chain asks for the last artifact and walks up only on misses).
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of cache hits in this walk.
    pub fn hits(&self) -> usize {
        self.entries.iter().filter(|e| e.hit).count()
    }

    /// Number of recomputed stages in this walk.
    pub fn misses(&self) -> usize {
        self.entries.iter().filter(|e| !e.hit).count()
    }

    /// Names of the recomputed stages, in consultation order.
    pub fn missed_stages(&self) -> Vec<&'static str> {
        self.entries
            .iter()
            .filter(|e| !e.hit)
            .map(|e| e.stage)
            .collect()
    }
}

/// A snapshot of one stage's global counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageStats {
    /// The stage name.
    pub stage: &'static str,
    /// Artifacts served from the cache.
    pub hits: u64,
    /// Artifacts recomputed (cache misses).
    pub misses: u64,
    /// Recomputations that panicked before producing an artifact: their
    /// key was never published, so the next consumer sees a plain
    /// (retryable) miss instead of a poisoned entry.
    pub quarantined: u64,
    /// Total wall time spent recomputing, in nanoseconds.
    pub busy_ns: u128,
}

#[derive(Default)]
struct StatCell {
    hits: u64,
    misses: u64,
    quarantined: u64,
    busy: Duration,
}

struct CacheInner {
    map: HashMap<(&'static str, StageKey), Arc<dyn Any + Send + Sync>>,
    order: VecDeque<(&'static str, StageKey)>,
    capacity: usize,
}

/// The process-wide stage cache: type-erased artifacts keyed by
/// `(stage name, content-hash key)`, with FIFO eviction past `capacity`
/// entries and per-stage counters.
///
/// Lookups and insertions are short critical sections; stage computation
/// always happens outside the lock, so two threads racing on the same key
/// at worst duplicate one computation (both results are identical by the
/// purity contract of [`Stage::run`]).
pub(crate) struct PipelineCache {
    inner: Mutex<CacheInner>,
    stats: Mutex<HashMap<&'static str, StatCell>>,
}

/// Default bound on cached artifacts; generous for every corpus size the
/// test suite and benches build (8 stages x a few thousand projects).
const DEFAULT_CAPACITY: usize = 32_768;

static CACHE: OnceLock<PipelineCache> = OnceLock::new();

pub(crate) fn cache() -> &'static PipelineCache {
    CACHE.get_or_init(|| PipelineCache {
        inner: Mutex::new(CacheInner {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
        }),
        stats: Mutex::new(HashMap::new()),
    })
}

impl PipelineCache {
    /// Fetches a typed artifact; records a global hit when found.
    pub(crate) fn get<T: Send + Sync + 'static>(
        &self,
        stage: &'static str,
        key: StageKey,
    ) -> Option<Arc<T>> {
        let found = {
            let inner = lock(&self.inner);
            inner
                .map
                .get(&(stage, key))
                .cloned()
                .and_then(|v| v.downcast::<T>().ok())
        };
        if found.is_some() {
            lock(&self.stats).entry(stage).or_default().hits += 1;
        }
        found
    }

    /// Stores a freshly computed artifact; records a global miss plus the
    /// compute wall time.
    pub(crate) fn insert(
        &self,
        stage: &'static str,
        key: StageKey,
        value: Arc<dyn Any + Send + Sync>,
        busy: Duration,
    ) {
        {
            let mut inner = lock(&self.inner);
            if inner.map.insert((stage, key), value).is_none() {
                inner.order.push_back((stage, key));
            }
            while inner.order.len() > inner.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                }
            }
        }
        let mut stats = lock(&self.stats);
        let cell = stats.entry(stage).or_default();
        cell.misses += 1;
        cell.busy += busy;
    }

    /// Drops every cached artifact (counters are kept; see
    /// [`PipelineCache::reset_stats`]).
    pub(crate) fn clear(&self) {
        let mut inner = lock(&self.inner);
        inner.map.clear();
        inner.order.clear();
    }

    /// Number of cached artifacts across all stages.
    pub(crate) fn len(&self) -> usize {
        lock(&self.inner).map.len()
    }

    /// Snapshots every cached entry's `(stage, key)` identity, sorted by
    /// stage then key — the read-only view the lint cache auditor walks.
    pub(crate) fn entry_keys(&self) -> Vec<(&'static str, StageKey)> {
        let mut keys: Vec<_> = lock(&self.inner).map.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Re-files an artifact under a different `(stage, key)` identity,
    /// returning whether the source entry existed. Deliberately breaks the
    /// content-hash invariant — the fault-injection hook behind
    /// [`crate::pipeline::corrupt_stage_cache_entry`].
    pub(crate) fn rekey(
        &self,
        from: (&'static str, StageKey),
        to: (&'static str, StageKey),
    ) -> bool {
        let mut inner = lock(&self.inner);
        let Some(value) = inner.map.remove(&from) else {
            return false;
        };
        inner.map.insert(to, value);
        for slot in inner.order.iter_mut() {
            if *slot == from {
                *slot = to;
            }
        }
        true
    }

    /// Records a quarantined recomputation: the stage panicked mid-run, so
    /// no artifact was published under its key. The cache itself needs no
    /// cleanup (insertion only happens after a successful run); the counter
    /// exists so chaos runs and `/health` can see how often it happened.
    pub(crate) fn record_quarantine(&self, stage: &'static str) {
        lock(&self.stats).entry(stage).or_default().quarantined += 1;
    }

    /// Zeroes all per-stage counters.
    pub(crate) fn reset_stats(&self) {
        lock(&self.stats).clear();
    }

    /// Snapshots the counters for the given stages, in the given order
    /// (stages that never ran report zeros).
    pub(crate) fn stats_snapshot(&self, order: &[&'static str]) -> Vec<StageStats> {
        let stats = lock(&self.stats);
        order
            .iter()
            .map(|&stage| {
                let cell = stats.get(stage);
                StageStats {
                    stage,
                    hits: cell.map_or(0, |c| c.hits),
                    misses: cell.map_or(0, |c| c.misses),
                    quarantined: cell.map_or(0, |c| c.quarantined),
                    busy_ns: cell.map_or(0, |c| c.busy.as_nanos()),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_keys_separate_stages_versions_and_inputs() {
        let k = derive_key("parse", 1, 7);
        assert_ne!(k, derive_key("schema", 1, 7), "stage name must matter");
        assert_ne!(k, derive_key("parse", 2, 7), "stage version must matter");
        assert_ne!(k, derive_key("parse", 1, 8), "input key must matter");
        assert_eq!(k, derive_key("parse", 1, 7), "keys are deterministic");
    }

    #[test]
    fn trace_counts_hits_and_misses() {
        let mut t = StageTrace::default();
        t.record("a", true);
        t.record("b", false);
        t.record("c", false);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
        assert_eq!(t.missed_stages(), ["b", "c"]);
    }

    #[test]
    fn cache_evicts_fifo_past_capacity() {
        let cache = PipelineCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: 2,
            }),
            stats: Mutex::new(HashMap::new()),
        };
        for key in 0..3u64 {
            cache.insert("s", key, Arc::new(key), Duration::ZERO);
        }
        assert!(cache.get::<u64>("s", 0).is_none(), "oldest entry evicted");
        assert_eq!(cache.get::<u64>("s", 2).as_deref(), Some(&2));
        assert_eq!(cache.len(), 2);
    }
}
