//! Human and JSON renderers for migration plans.
//!
//! Same presentation split as the as-of query renderers: the planner
//! returns plain data, and both the CLI and the HTTP service format it
//! through these functions, so a CLI golden and a `curl` response for the
//! same plan are byte-identical JSON. The envelope is built from primitives
//! so this crate stays independent of the as-of index; the `asof` crate
//! provides the adapter that fills it from an index.

use serde_json::{json, Value};

use crate::dialects::refusal_hint;
use crate::plan::{MigrationPlan, PlanError};

/// The request context a plan answer is wrapped in: the project, its
/// observed lifespan, and the queried month span.
#[derive(Clone, Debug)]
pub struct PlanRequest {
    /// The project the plan is for.
    pub project: String,
    /// First observed month (`YYYY-MM`).
    pub lifespan_start: String,
    /// Last observed month (`YYYY-MM`).
    pub lifespan_last: String,
    /// Lifespan length in months.
    pub lifespan_months: usize,
    /// The plan's starting month (`YYYY-MM`).
    pub from: String,
    /// The plan's target month (`YYYY-MM`).
    pub to: String,
}

/// The JSON form of a plan answer.
pub fn plan_json(req: &PlanRequest, plan: &MigrationPlan) -> Value {
    json!({
        "project": (req.project.clone()),
        "lifespan": {
            "start": (req.lifespan_start.clone()),
            "last": (req.lifespan_last.clone()),
            "months": (req.lifespan_months),
        },
        "from": (req.from.clone()),
        "to": (req.to.clone()),
        "dialect": (plan.dialect),
        "statement_count": (plan.statements.len()),
        "rebuilds": (plan.rebuilds.clone()),
        "lossy": (plan.lossy),
        "statements": (plan
            .statements
            .iter()
            .map(|s| json!({"op": (s.op.clone()), "sql": (s.sql.clone())}))
            .collect::<Vec<_>>()),
    })
}

/// The human form of a plan answer: a header plus the script.
pub fn plan_human(req: &PlanRequest, plan: &MigrationPlan) -> String {
    let mut out = format!(
        "{} plan {} -> {} ({}): {} statements, {} rebuilds (lifespan {}..{})\n",
        req.project,
        req.from,
        req.to,
        plan.dialect,
        plan.statements.len(),
        plan.rebuilds.len(),
        req.lifespan_start,
        req.lifespan_last,
    );
    if plan.lossy {
        out.push_str(
            "-- destructive: this plan drops tables or columns (or rebuilds a table); \
             the data they hold has no inverse\n",
        );
    }
    if plan.statements.is_empty() {
        out.push_str("-- no changes\n");
    } else {
        out.push_str(&plan.script());
        out.push('\n');
    }
    out
}

/// The JSON body for a plan failure (the serve 422 / CLI `--format json`
/// error shape), echoing the offending op when there is one.
pub fn plan_error_json(err: &PlanError) -> Value {
    match err {
        PlanError::Unsupported(u) => json!({
            "error": "unsupported_diff_op",
            "dialect": (u.dialect),
            "op": (u.op.clone()),
            "reason": (u.reason.clone()),
            "detail": (u.to_string()),
            "hint": (refusal_hint(u.dialect)),
        }),
        PlanError::Unfaithful { dialect, diverged } => json!({
            "error": "unfaithful_plan",
            "dialect": (*dialect),
            "diverged": (diverged.clone()),
            "detail": (err.to_string()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlannedStatement, UnsupportedDiffOp};

    fn sample_plan() -> MigrationPlan {
        MigrationPlan {
            dialect: "mysql",
            statements: vec![PlannedStatement {
                op: "add_column t.c".into(),
                sql: "ALTER TABLE `t` ADD COLUMN `c` int;".into(),
            }],
            rebuilds: Vec::new(),
            lossy: false,
        }
    }

    fn sample_req() -> PlanRequest {
        PlanRequest {
            project: "p".into(),
            lifespan_start: "2015-01".into(),
            lifespan_last: "2016-01".into(),
            lifespan_months: 13,
            from: "2015-02".into(),
            to: "2015-03".into(),
        }
    }

    #[test]
    fn plan_json_shape() {
        let v = plan_json(&sample_req(), &sample_plan());
        let text = serde_json::to_string(&v).unwrap_or_default();
        assert!(text.contains("\"dialect\":\"mysql\""), "{text}");
        assert!(text.contains("\"statement_count\":1"), "{text}");
        assert!(text.contains("\"op\":\"add_column t.c\""), "{text}");
    }

    #[test]
    fn plan_human_includes_script() {
        let h = plan_human(&sample_req(), &sample_plan());
        assert!(h.starts_with("p plan 2015-02 -> 2015-03 (mysql): 1 statements"));
        assert!(h.contains("ALTER TABLE `t` ADD COLUMN `c` int;"));
    }

    #[test]
    fn error_json_echoes_the_offending_op() {
        let err = PlanError::Unsupported(UnsupportedDiffOp {
            dialect: "sqlite",
            op: "alter_column t.a (int -> bigint)".into(),
            reason: "sqlite has no ALTER COLUMN".into(),
        });
        let text = serde_json::to_string(&plan_error_json(&err)).unwrap_or_default();
        assert!(text.contains("\"op\":\"alter_column t.a (int -> bigint)\""), "{text}");
        assert!(text.contains("unsupported_diff_op"), "{text}");
        assert!(
            text.contains("\"hint\":\"sqlite cannot alter columns"),
            "the 422 body carries the same hint as the CLI exit-2 output: {text}"
        );
    }

    #[test]
    fn lossy_plans_are_disclosed_in_both_renderings() {
        let mut plan = sample_plan();
        plan.lossy = true;
        plan.rebuilds = vec!["t".into()];
        let text = serde_json::to_string(&plan_json(&sample_req(), &plan)).unwrap_or_default();
        assert!(text.contains("\"lossy\":true"), "{text}");
        let human = plan_human(&sample_req(), &plan);
        assert!(human.contains("-- destructive:"), "{human}");
    }
}
