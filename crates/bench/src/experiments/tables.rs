//! Table 1, Table 2 and Figure 4: the tabular artifacts of the paper.

use std::collections::BTreeMap;

use serde::Serialize;

use schemachron_core::quantize::{
    ActiveGrowthClass, ActivePupClass, BirthVolumeClass, IntervalClass, TailClass, TimepointClass,
};
use schemachron_core::Pattern;

use crate::context::ExpContext;
use crate::report::{cell, text_table};

/// One quantized metric's label census (a block of Table 1).
#[derive(Clone, Debug, Serialize)]
pub struct LabelCensus {
    /// Metric name as printed in Table 1.
    pub metric: String,
    /// `(label, measured count, paper count)` triples in ordinal order.
    pub labels: Vec<(String, usize, usize)>,
}

/// Table 1 — labeling limits of the schema evolution metrics with the
/// number of projects per label, measured vs paper.
#[derive(Clone, Debug, Serialize)]
pub struct Table1 {
    /// One census per quantized metric.
    pub censuses: Vec<LabelCensus>,
}

/// Regenerates Table 1 from the corpus.
pub fn table1(ctx: &ExpContext) -> Table1 {
    let projects = ctx.corpus.projects();
    let mut censuses = Vec::new();

    let count = |f: &dyn Fn(&schemachron_core::Labels) -> usize, n: usize| -> Vec<usize> {
        let mut v = vec![0; n];
        for p in projects {
            v[f(&p.labels)] += 1;
        }
        v
    };

    let mk =
        |metric: &str, names: Vec<&str>, measured: Vec<usize>, paper: Vec<usize>| -> LabelCensus {
            LabelCensus {
                metric: metric.to_owned(),
                labels: names
                    .into_iter()
                    .map(str::to_owned)
                    .zip(measured)
                    .zip(paper)
                    .map(|((l, m), p)| (l, m, p))
                    .collect(),
            }
        };

    censuses.push(mk(
        "Volume of Birth (%Total Change)",
        BirthVolumeClass::ALL.iter().map(|c| c.label()).collect(),
        count(&|l| l.birth_volume.ordinal() as usize, 4),
        vec![16, 52, 44, 39],
    ));
    censuses.push(mk(
        "Time Point of Birth (%PUP)",
        TimepointClass::ALL.iter().map(|c| c.label()).collect(),
        count(&|l| l.birth_point.ordinal() as usize, 4),
        vec![52, 53, 33, 13],
    ));
    censuses.push(mk(
        "Time point of reaching Top Band (%PUP)",
        TimepointClass::ALL.iter().map(|c| c.label()).collect(),
        count(&|l| l.topband_point.ordinal() as usize, 4),
        vec![23, 41, 47, 40],
    ));
    censuses.push(mk(
        "Interval (%PUP) (birth..top-band)",
        IntervalClass::ALL.iter().map(|c| c.label()).collect(),
        count(&|l| l.interval_birth_to_top.ordinal() as usize, 5),
        vec![62, 26, 27, 23, 13],
    ));
    censuses.push(mk(
        "Interval (%PUP) (top-band..end]",
        TailClass::ALL.iter().map(|c| c.label()).collect(),
        count(&|l| l.interval_top_to_end.ordinal() as usize, 4),
        vec![40, 48, 40, 23],
    ));
    censuses.push(mk(
        "Active months as %growth",
        ActiveGrowthClass::ALL.iter().map(|c| c.label()).collect(),
        count(&|l| l.active_growth.ordinal() as usize, 4),
        vec![98, 22, 22, 9],
    ));
    censuses.push(mk(
        "Active months as %PUP",
        ActivePupClass::ALL.iter().map(|c| c.label()).collect(),
        count(&|l| l.active_pup.ordinal() as usize, 4),
        vec![98, 20, 33, 0],
    ));
    Table1 { censuses }
}

impl Table1 {
    /// Renders the table, paper numbers alongside for comparison.
    pub fn render(&self) -> String {
        let mut out = String::from("Table 1 — labeling of schema evolution metrics\n\n");
        for c in &self.censuses {
            out.push_str(&c.metric);
            out.push('\n');
            let header = vec![cell("label"), cell("measured"), cell("paper")];
            let rows: Vec<Vec<String>> = c
                .labels
                .iter()
                .map(|(l, m, p)| vec![cell(l), cell(m), cell(p)])
                .collect();
            out.push_str(&text_table(&header, &rows));
            out.push('\n');
        }
        out
    }
}

/// Table 2 — exceptions and overlaps per pattern.
#[derive(Clone, Debug, Serialize)]
pub struct Table2 {
    /// `(pattern, population, exceptions, paper exceptions, overlaps)` rows.
    pub rows: Vec<Table2Row>,
}

/// One Table 2 row.
#[derive(Clone, Debug, Serialize)]
pub struct Table2Row {
    /// The pattern.
    pub pattern: Pattern,
    /// Project count.
    pub projects: usize,
    /// Measured definition violations among assigned projects.
    pub exceptions: usize,
    /// Exceptions reported in the paper.
    pub paper_exceptions: usize,
    /// Projects sharing a label-space cell with another pattern.
    pub overlaps: usize,
}

/// Regenerates Table 2. Exceptions are *measured*: a project counts as an
/// exception when its measured labels violate its assigned pattern's strict
/// definition.
pub fn table2(ctx: &ExpContext) -> Table2 {
    use schemachron_core::validate::domain_coverage;
    let coverage = domain_coverage(&ctx.corpus.annotated_labels());
    let paper = BTreeMap::from([
        (Pattern::Flatliner, 0),
        (Pattern::RadicalSign, 0),
        (Pattern::Sigmoid, 2),
        (Pattern::LateRiser, 1),
        (Pattern::QuantumSteps, 2),
        (Pattern::RegularlyCurated, 0),
        (Pattern::SmokingFunnel, 0),
        (Pattern::Siesta, 3),
    ]);
    let rows = Pattern::ALL
        .iter()
        .map(|&p| {
            let members: Vec<_> = ctx.corpus.of_pattern(p).collect();
            let exceptions = members.iter().filter(|m| !p.matches(&m.labels)).count();
            let overlaps = coverage
                .values()
                .filter(|census| census.is_overlap())
                .filter_map(|census| census.per_pattern.get(&p))
                .sum();
            Table2Row {
                pattern: p,
                projects: members.len(),
                exceptions,
                paper_exceptions: paper[&p],
                overlaps,
            }
        })
        .collect();
    Table2 { rows }
}

impl Table2 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let header = vec![
            cell("Pattern"),
            cell("#prjs"),
            cell("Exceptions"),
            cell("Paper"),
            cell("Overlaps"),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    cell(r.pattern.name()),
                    cell(r.projects),
                    cell(r.exceptions),
                    cell(r.paper_exceptions),
                    cell(r.overlaps),
                ]
            })
            .collect();
        format!(
            "Table 2 — exceptions and overlaps of the pattern definitions\n\n{}",
            text_table(&header, &rows)
        )
    }
}

/// Figure 4 — overview of the per-pattern characteristics: for every
/// pattern and every class-based metric, the set of observed labels.
#[derive(Clone, Debug, Serialize)]
pub struct Figure4 {
    /// One row per pattern.
    pub rows: Vec<Figure4Row>,
}

/// One Figure 4 row: the observed label sets of one pattern.
#[derive(Clone, Debug, Serialize)]
pub struct Figure4Row {
    /// The pattern.
    pub pattern: Pattern,
    /// Population.
    pub projects: usize,
    /// Observed birth-volume classes (label → count).
    pub birth_volume: BTreeMap<String, usize>,
    /// Observed birth-timing classes.
    pub birth_timing: BTreeMap<String, usize>,
    /// Observed top-band point classes.
    pub topband: BTreeMap<String, usize>,
    /// Observed single-vault values.
    pub has_vault: BTreeMap<String, usize>,
    /// Observed birth→top interval classes.
    pub interval: BTreeMap<String, usize>,
    /// Range of growth months with change (min..=max).
    pub growth_months: (usize, usize),
    /// Observed active-%growth classes.
    pub active_growth: BTreeMap<String, usize>,
    /// Observed tail classes.
    pub tail: BTreeMap<String, usize>,
}

/// Regenerates Figure 4 from the corpus.
pub fn figure4(ctx: &ExpContext) -> Figure4 {
    let rows = Pattern::ALL
        .iter()
        .map(|&p| {
            let members: Vec<_> = ctx.corpus.of_pattern(p).collect();
            let mut row = Figure4Row {
                pattern: p,
                projects: members.len(),
                birth_volume: BTreeMap::new(),
                birth_timing: BTreeMap::new(),
                topband: BTreeMap::new(),
                has_vault: BTreeMap::new(),
                interval: BTreeMap::new(),
                growth_months: (usize::MAX, 0),
                active_growth: BTreeMap::new(),
                tail: BTreeMap::new(),
            };
            for m in members {
                let l = &m.labels;
                *row.birth_volume
                    .entry(l.birth_volume.label().into())
                    .or_insert(0) += 1;
                *row.birth_timing
                    .entry(l.birth_point.label().into())
                    .or_insert(0) += 1;
                *row.topband
                    .entry(l.topband_point.label().into())
                    .or_insert(0) += 1;
                *row.has_vault
                    .entry(if l.has_single_vault { "TRUE" } else { "FALSE" }.into())
                    .or_insert(0) += 1;
                *row.interval
                    .entry(l.interval_birth_to_top.label().into())
                    .or_insert(0) += 1;
                row.growth_months.0 = row.growth_months.0.min(l.active_growth_months);
                row.growth_months.1 = row.growth_months.1.max(l.active_growth_months);
                *row.active_growth
                    .entry(l.active_growth.label().into())
                    .or_insert(0) += 1;
                *row.tail
                    .entry(l.interval_top_to_end.label().into())
                    .or_insert(0) += 1;
            }
            row
        })
        .collect();
    Figure4 { rows }
}

fn set_str(m: &BTreeMap<String, usize>) -> String {
    let mut entries: Vec<(&String, &usize)> = m.iter().collect();
    entries.sort_by(|a, b| b.1.cmp(a.1));
    entries
        .iter()
        .map(|(k, v)| format!("{k}({v})"))
        .collect::<Vec<_>>()
        .join(" ")
}

impl Figure4 {
    /// Renders the overview table.
    pub fn render(&self) -> String {
        let header = vec![
            cell("Pattern"),
            cell("#"),
            cell("BirthVol"),
            cell("BirthTiming"),
            cell("TopBand"),
            cell("Vault"),
            cell("IntervalB2T"),
            cell("GrowthMo"),
            cell("ActiveGrowth"),
            cell("Tail"),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    cell(r.pattern.name()),
                    cell(r.projects),
                    set_str(&r.birth_volume),
                    set_str(&r.birth_timing),
                    set_str(&r.topband),
                    set_str(&r.has_vault),
                    set_str(&r.interval),
                    cell(format!("{}-{}", r.growth_months.0, r.growth_months.1)),
                    set_str(&r.active_growth),
                    set_str(&r.tail),
                ]
            })
            .collect();
        format!(
            "Figure 4 — characteristics of the time-related patterns\n\n{}",
            text_table(&header, &rows)
        )
    }
}
