//! Safety goldens through the real CLI entry point: the checked-in
//! `goldens/safety/*.json` analyses — one project per lattice value — must
//! be reproduced byte for byte at `--jobs 1` and `--jobs 8`, and
//! `schemachron plan --deny-lossy` must refuse the golden-pinned lossy
//! span with the lossy exit code (3).

// Integration-test helpers sit outside `#[test]` fns, so clippy's
// allow-in-tests escape hatch does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;

fn repo_path(rel: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(rel)
        .to_string_lossy()
        .into_owned()
}

fn run_cli(args: &[&str]) -> (Result<(), schemachron_cli::CliError>, String) {
    let argv: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    let mut buf: Vec<u8> = Vec::new();
    let result = schemachron_cli::run(&argv, &mut buf);
    (result, String::from_utf8(buf).expect("safety output is UTF-8"))
}

#[test]
fn safety_goldens_match_byte_for_byte_at_jobs_1_and_8() {
    // One project per lattice value, so the goldens pin all three verdicts:
    // flatliner-010 is all-lossless, radical-053's worst op is recoverable,
    // curated-132 drops tables and columns outright.
    let cases = [
        ("flatliner-010", "lossless"),
        ("radical-053", "recoverable"),
        ("curated-132", "lossy"),
    ];
    for (project, worst) in cases {
        let golden =
            std::fs::read_to_string(repo_path(&format!("goldens/safety/{project}.json")))
                .expect("checked-in golden");
        assert!(
            golden.contains(&format!("\"worst\": \"{worst}\"")),
            "{project}: golden no longer pins worst = {worst}"
        );
        for jobs in ["1", "8"] {
            let (result, out) =
                run_cli(&["safety", project, "--format", "json", "--jobs", jobs]);
            result.unwrap_or_else(|e| panic!("safety {project} --jobs {jobs}: {}", e.message));
            assert_eq!(
                out, golden,
                "safety {project} --jobs {jobs}: drifted from the golden"
            );
        }
    }
}

#[test]
fn deny_lossy_refuses_a_destructive_plan_with_exit_3() {
    // The same span the plan goldens pin: curated-132's sqlite script
    // rebuilds tables, so the plan is lossy by construction.
    let (result, out) = run_cli(&[
        "plan", "curated-132", "--from", "2015-12", "--to", "2017-06",
        "--dialect", "sqlite", "--deny-lossy",
    ]);
    assert!(out.is_empty(), "a denied plan writes nothing to stdout");
    let err = result.expect_err("the span drops data; --deny-lossy must refuse it");
    assert_eq!(err.code, schemachron_cli::EXIT_LOSSY);
    assert!(
        err.message.starts_with("plan: lossy plan denied: "),
        "{}",
        err.message
    );
    assert!(
        err.message.contains("hint: drop --deny-lossy"),
        "{}",
        err.message
    );

    // pg expresses the span without rebuilds, but the span itself drops
    // tables, so --deny-lossy refuses it regardless of dialect.
    let (result, out) = run_cli(&[
        "plan", "curated-132", "--from", "2015-12", "--to", "2017-06",
        "--dialect", "pg", "--deny-lossy",
    ]);
    assert!(out.is_empty());
    let err = result.expect_err("dropped tables are lossy in every dialect");
    assert_eq!(err.code, schemachron_cli::EXIT_LOSSY, "{}", err.message);
}

#[test]
fn explain_safety_annotates_a_clean_plan() {
    // A same-month span has no ops at all: the plan is trivially lossless
    // and --deny-lossy accepts it.
    let (result, out) = run_cli(&[
        "plan", "curated-132", "--from", "2015-12", "--to", "2015-12",
        "--dialect", "pg", "--deny-lossy", "--explain-safety", "--format", "json",
    ]);
    result.expect("an empty plan is lossless");
    let v: serde_json::Value = serde_json::from_str(&out).unwrap();
    assert_eq!(v["statement_count"].as_u64(), Some(0));
    assert_eq!(v["safety"]["class"].as_str(), Some("lossless"), "{out}");
    assert!(v["safety"]["offender"].is_null(), "{out}");

    let (result, human) = run_cli(&[
        "plan", "curated-132", "--from", "2015-12", "--to", "2015-12",
        "--dialect", "pg", "--explain-safety",
    ]);
    result.expect("human rendering succeeds");
    assert!(
        human.contains("safety: lossless — every op is invertible from schema alone"),
        "{human}"
    );
}
