//! Minimal SVG rendering of dual cumulative progress lines.
//!
//! The output is a standalone `<svg>` document with the schema line dashed
//! (the paper draws it dotted blue) and the source line solid (green).

use std::fmt::Write as _;

use schemachron_history::ProjectHistory;

/// SVG chart options.
#[derive(Clone, Copy, Debug)]
pub struct SvgChart {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Number of sample points per line.
    pub samples: usize,
}

impl Default for SvgChart {
    fn default() -> Self {
        SvgChart {
            width: 480,
            height: 240,
            samples: 100,
        }
    }
}

const MARGIN: f64 = 30.0;

impl SvgChart {
    /// Smallest/largest canvas dimension [`SvgChart::sized`] will accept.
    pub const MIN_DIM: u32 = 80;
    /// See [`SvgChart::MIN_DIM`].
    pub const MAX_DIM: u32 = 4096;

    /// A chart with the requested canvas, clamped to
    /// [`MIN_DIM`](Self::MIN_DIM)`..=`[`MAX_DIM`](Self::MAX_DIM) so callers
    /// can pass through untrusted dimensions (e.g. HTTP query parameters)
    /// without producing degenerate or absurdly large documents.
    pub fn sized(width: u32, height: u32) -> Self {
        SvgChart {
            width: width.clamp(Self::MIN_DIM, Self::MAX_DIM),
            height: height.clamp(Self::MIN_DIM, Self::MAX_DIM),
            ..SvgChart::default()
        }
    }
    /// Renders the project as an SVG document string.
    pub fn render(&self, p: &ProjectHistory) -> String {
        let schema = p.schema_heartbeat().sample_normalized(self.samples);
        let source = p.source_heartbeat().sample_normalized(self.samples);
        self.render_series(p.name(), &schema, &source)
    }

    /// Renders two pre-sampled `[0, 1]` series.
    pub fn render_series(&self, title: &str, schema: &[f64], source: &[f64]) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
            self.width, self.height, self.width, self.height
        );
        let _ = write!(
            s,
            r#"<rect width="100%" height="100%" fill="white"/><text x="{}" y="18" font-family="sans-serif" font-size="13">{}</text>"#,
            MARGIN,
            escape(title)
        );
        // Axes.
        let (x0, y0) = (MARGIN, self.height as f64 - MARGIN);
        let (x1, y1) = (self.width as f64 - MARGIN, MARGIN);
        let _ = write!(
            s,
            r#"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/><line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>"#
        );
        let _ = write!(
            s,
            r#"<polyline fill="none" stroke="green" stroke-width="1.5" points="{}"/>"#,
            self.points(source)
        );
        let _ = write!(
            s,
            r#"<polyline fill="none" stroke="blue" stroke-width="1.5" stroke-dasharray="3 3" points="{}"/>"#,
            self.points(schema)
        );
        s.push_str("</svg>");
        s
    }

    fn points(&self, series: &[f64]) -> String {
        if series.is_empty() {
            return String::new();
        }
        let x0 = MARGIN;
        let x1 = self.width as f64 - MARGIN;
        let y0 = self.height as f64 - MARGIN;
        let y1 = MARGIN;
        let n = series.len();
        let mut out = String::new();
        for (i, v) in series.iter().enumerate() {
            let t = if n == 1 {
                1.0
            } else {
                i as f64 / (n - 1) as f64
            };
            let x = x0 + t * (x1 - x0);
            let y = y0 + v.clamp(0.0, 1.0) * (y1 - y0);
            let _ = write!(out, "{x:.1},{y:.1} ");
        }
        out.trim_end().to_owned()
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_history::MonthId;

    #[test]
    fn renders_wellformed_svg() {
        let mut schema = vec![0.0; 24];
        schema[0] = 4.0;
        let p =
            ProjectHistory::from_heartbeats("svg-test", MonthId(0), schema, vec![1.0; 24], [0; 6]);
        let svg = SvgChart::default().render(&p);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn title_is_escaped() {
        let svg = SvgChart::default().render_series("a<b&c", &[0.5], &[0.5]);
        assert!(svg.contains("a&lt;b&amp;c"));
    }

    #[test]
    fn empty_series_yield_no_points() {
        let svg = SvgChart::default().render_series("t", &[], &[]);
        assert!(svg.contains(r#"points="""#));
    }

    #[test]
    fn sized_clamps_untrusted_dimensions() {
        let c = SvgChart::sized(0, 9_999_999);
        assert_eq!(c.width, SvgChart::MIN_DIM);
        assert_eq!(c.height, SvgChart::MAX_DIM);
        let ok = SvgChart::sized(640, 360);
        assert_eq!((ok.width, ok.height), (640, 360));
        assert!(ok.render_series("t", &[0.1, 0.9], &[0.2, 0.8]).contains(r#"width="640""#));
    }
}
