//! Runs the per-pattern data-loss exposure census (beyond the paper).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::safety_exp(&ctx);
    emit(
        "exp_safety",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
