//! Evolution report: the "schema-history miner" scenario from the paper's
//! introduction — given a repository's `.sql` history on disk, reconstruct
//! the logical schema timeline, measure the §3.2 metrics, classify the
//! pattern, and draw the Fig. 1-style chart.
//!
//! The example materializes one synthetic project to a temp directory first
//! (standing in for a cloned FOSS repository), then analyzes it purely from
//! the files, exactly as the CLI's `analyze` command does.
//!
//! Run with: `cargo run --example evolution_report`

use std::fs;

use schemachron::chart::ascii::AsciiChart;
use schemachron::core::metrics::TimeMetrics;
use schemachron::core::quantize::Labels;
use schemachron::core::{classify, classify_nearest, Pattern};
use schemachron::corpus::io::{load_project_dir, write_corpus_dir};
use schemachron::corpus::Corpus;
use schemachron::history::IngestMode;

fn main() {
    let out = std::env::temp_dir().join(format!("schemachron-report-{}", std::process::id()));
    let _ = fs::remove_dir_all(&out);

    // Stand-in for `git clone` + history extraction: write the corpus's
    // project histories to disk as dated .sql files.
    let corpus = Corpus::generate(42);
    write_corpus_dir(&corpus, &out).expect("write corpus");

    // Pick one project per family and analyze it from the files alone.
    for pattern in [
        Pattern::RadicalSign,
        Pattern::RegularlyCurated,
        Pattern::Siesta,
    ] {
        let name = &corpus
            .of_pattern(pattern)
            .next()
            .expect("pattern populated")
            .card
            .name;
        let project =
            load_project_dir(&out.join(name), IngestMode::Migration).expect("load project");
        let metrics = TimeMetrics::from_project(&project).expect("schema activity");
        let labels = Labels::from_metrics(&metrics);

        println!("{}", "=".repeat(70));
        println!("repository: {name}");
        println!(
            "  {} months of history, {} affected attributes in total",
            metrics.pup_months, metrics.total_activity
        );
        println!(
            "  schema born at {:.0}% of life carrying {:.0}% of all change; top band at {:.0}%",
            metrics.birth_pct_pup * 100.0,
            metrics.birth_volume_pct_total * 100.0,
            metrics.topband_pct_pup * 100.0
        );
        let verdict = classify(&labels)
            .map(|p| p.name().to_owned())
            .unwrap_or_else(|| {
                let (p, _) = classify_nearest(&labels);
                format!("exception, nearest {}", p.name())
            });
        println!("  pattern: {verdict}\n");
        println!(
            "{}",
            AsciiChart {
                width: 64,
                height: 12
            }
            .render(&project)
        );
    }

    let _ = fs::remove_dir_all(&out);
}
