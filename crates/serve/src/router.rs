//! Route dispatch over the shared corpus cache and experiment registry,
//! plus the request guard: per-request deadlines and per-route circuit
//! breakers that shed to a degraded cached answer while a route misbehaves.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use schemachron_asof::{index_for, render as asof_render, AsOfArtifact, DEFAULT_K_MONTHS};
use schemachron_bench::context::ExpContext;
use schemachron_bench::experiments::{run_experiment, EXPERIMENT_IDS};
use schemachron_chart::svg::SvgChart;
use schemachron_core::{classify, classify_nearest, Pattern};
use schemachron_corpus::CorpusProject;
use schemachron_fault as fault;
use schemachron_history::MonthId;
use schemachron_stream::{render as stream_render, Append, StreamError, StreamStore, FEED_CAPACITY};
use serde_json::{json, Value};

use crate::breaker::{Breaker, Gate};
use crate::http::{Request, Response};

/// Locks a state mutex, ignoring poisoning: every critical section below
/// moves plain data, so a panic mid-section cannot corrupt the map.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-route hit counters, exported on `/health`. Everything is relaxed
/// atomics — the counters are observability, not accounting.
#[derive(Debug, Default)]
pub struct Counters {
    total: AtomicU64,
    health: AtomicU64,
    corpus_projects: AtomicU64,
    project_history: AtomicU64,
    project_pattern: AtomicU64,
    project_diagnostics: AtomicU64,
    project_schema: AtomicU64,
    project_diff: AtomicU64,
    project_plan: AtomicU64,
    project_provenance: AtomicU64,
    project_safety: AtomicU64,
    project_commit: AtomicU64,
    changes: AtomicU64,
    experiments: AtomicU64,
    chart: AtomicU64,
    other: AtomicU64,
    shed: AtomicU64,
    deadline_timeouts: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> Value {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        json!({
            "total": (get(&self.total)),
            "health": (get(&self.health)),
            "corpus_projects": (get(&self.corpus_projects)),
            "project_history": (get(&self.project_history)),
            "project_pattern": (get(&self.project_pattern)),
            "project_diagnostics": (get(&self.project_diagnostics)),
            "project_schema": (get(&self.project_schema)),
            "project_diff": (get(&self.project_diff)),
            "project_plan": (get(&self.project_plan)),
            "project_provenance": (get(&self.project_provenance)),
            "project_safety": (get(&self.project_safety)),
            "project_commit": (get(&self.project_commit)),
            "changes": (get(&self.changes)),
            "experiments": (get(&self.experiments)),
            "chart": (get(&self.chart)),
            "other": (get(&self.other)),
            "shed": (get(&self.shed)),
            "deadline_timeouts": (get(&self.deadline_timeouts)),
        })
    }
}

/// Request-guard parameters: the per-request wall-clock deadline and the
/// breaker cooldown. Both are plumbed from `ServerConfig` (and from the
/// chaos harness, which uses much shorter values).
#[derive(Clone, Copy, Debug)]
pub struct GuardConfig {
    /// Wall-clock budget per guarded request; exceeding it answers `504`
    /// while the handler finishes (and is discarded) in the background.
    pub deadline: Duration,
    /// How long an open breaker sheds before admitting a half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            deadline: Duration::from_secs(10),
            breaker_cooldown: Duration::from_secs(2),
        }
    }
}

/// The stable route class of a request path — the unit at which breakers
/// trip and degraded answers are cached. Mirrors the dispatch in
/// [`AppState::handle`].
pub fn route_key(path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        [] => "index",
        ["health"] => "health",
        ["corpus", _, "projects"] => "corpus_projects",
        ["project", _, "history"] => "project_history",
        ["project", _, "pattern"] => "project_pattern",
        ["project", _, "diagnostics"] => "project_diagnostics",
        ["project", _, "schema"] => "project_schema",
        ["project", _, "diff"] => "project_diff",
        ["project", _, "plan"] => "project_plan",
        ["project", _, "provenance", _] => "project_provenance",
        ["project", _, "safety"] => "project_safety",
        ["project", _, "commit"] => "project_commit",
        ["changes"] => "changes",
        ["experiments", _] => "experiments",
        ["chart", _] => "chart",
        _ => "other",
    }
}

/// The methods a resolved route accepts, or `None` when the path matches
/// no route at all. Dispatch resolves the route *first*: a known path with
/// the wrong method answers `405` with this value in `Allow`, while an
/// unknown path stays `404` for every method.
fn route_allow(path: &str) -> Option<&'static str> {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["project", _, "commit"] => Some("POST"),
        []
        | ["health"]
        | ["changes"]
        | ["corpus", _, "projects"]
        | ["project", _, "history" | "pattern" | "diagnostics" | "schema" | "diff" | "plan" | "safety"]
        | ["project", _, "provenance", _]
        | ["experiments", _]
        | ["chart", _] => Some("GET"),
        _ => None,
    }
}

/// Shared service state: the default seed, per-seed memoized experiment
/// contexts (each wrapping the process-wide `Arc<Corpus>` cache), uptime
/// and counters.
pub struct AppState {
    default_seed: u64,
    started: Instant,
    counters: Counters,
    contexts: Mutex<HashMap<u64, Arc<ExpContext>>>,
    guard: GuardConfig,
    breakers: Mutex<BTreeMap<&'static str, Breaker>>,
    /// Last good JSON answer per route: `(request target, body bytes)`.
    /// While a route's breaker is open, an exact-target repeat is answered
    /// from here (marked degraded) instead of with a bare `503`.
    degraded: Mutex<BTreeMap<&'static str, (String, Vec<u8>)>>,
    /// Where this state's streaming WALs live.
    stream_root: PathBuf,
    /// The streaming store, opened lazily on the first stream route hit so
    /// read-only deployments never touch the disk.
    stream: Mutex<Option<StreamStore>>,
}

/// Distinguishes the default stream roots of multiple `AppState`s in one
/// process (tests build many); the pid distinguishes processes.
static STREAM_ROOT_ID: AtomicU64 = AtomicU64::new(0);

fn default_stream_root() -> PathBuf {
    std::env::temp_dir().join(format!(
        "schemachron-stream-{}-{}",
        std::process::id(),
        STREAM_ROOT_ID.fetch_add(1, Ordering::Relaxed)
    ))
}

impl AppState {
    /// Builds the state. `default_seed` is used by `/project`, `/chart` and
    /// `/experiments` routes when the request carries no `?seed=`.
    pub fn new(default_seed: u64) -> AppState {
        Self::with_guard(default_seed, GuardConfig::default())
    }

    /// [`AppState::new`] with explicit request-guard parameters. The
    /// streaming store lands in a per-state temp directory; use
    /// [`AppState::with_stream_root`] to persist it across restarts.
    pub fn with_guard(default_seed: u64, guard: GuardConfig) -> AppState {
        Self::with_stream_root(default_seed, guard, default_stream_root())
    }

    /// [`AppState::with_guard`] with an explicit streaming-store root, so
    /// appended commits survive restarts of the service.
    pub fn with_stream_root(
        default_seed: u64,
        guard: GuardConfig,
        stream_root: PathBuf,
    ) -> AppState {
        AppState {
            default_seed,
            started: Instant::now(),
            counters: Counters::default(),
            contexts: Mutex::new(HashMap::new()),
            guard,
            breakers: Mutex::new(BTreeMap::new()),
            degraded: Mutex::new(BTreeMap::new()),
            stream_root,
            stream: Mutex::new(None),
        }
    }

    /// Where this state's streaming WALs live.
    pub fn stream_root(&self) -> &std::path::Path {
        &self.stream_root
    }

    /// Runs `f` over the streaming store, opening (and replaying) it on
    /// first use; an unopenable store answers `500`.
    fn with_stream_store<R>(
        &self,
        f: impl FnOnce(&mut StreamStore) -> R,
    ) -> Result<R, Response> {
        let mut guard = lock(&self.stream);
        if guard.is_none() {
            match StreamStore::open(&self.stream_root) {
                Ok(store) => *guard = Some(store),
                Err(e) => {
                    return Err(Response::json(
                        500,
                        &json!({
                            "error": "stream store unavailable",
                            "detail": (e.to_string()),
                        }),
                    ))
                }
            }
        }
        match guard.as_mut() {
            Some(store) => Ok(f(store)),
            None => unreachable!("opened above"),
        }
    }

    /// The guard parameters this state was built with.
    pub fn guard_config(&self) -> GuardConfig {
        self.guard
    }

    /// The memoized context for a seed; the underlying corpus comes from
    /// the process-wide seed-keyed cache, so it is built at most once per
    /// process no matter how many requests race here.
    pub fn context(&self, seed: u64) -> Arc<ExpContext> {
        // A context build never leaves the map half-written, so a poisoned
        // lock (panicking builder on another worker) is safe to re-enter.
        let mut map = self
            .contexts
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(seed)
                .or_insert_with(|| Arc::new(ExpContext::new(seed))),
        )
    }

    /// Total requests handled so far.
    pub fn total_requests(&self) -> u64 {
        self.counters.total.load(Ordering::Relaxed)
    }

    /// Dispatches one parsed request to its route handler. Routing happens
    /// before the method check: a known path with the wrong method answers
    /// `405` with that route's `Allow` header, an unknown path answers
    /// `404` for every method.
    pub fn handle(&self, req: &Request) -> Response {
        self.counters.total.fetch_add(1, Ordering::Relaxed);
        match route_allow(&req.path) {
            None => {
                self.counters.other.fetch_add(1, Ordering::Relaxed);
                return Response::json(
                    404,
                    &json!({"error": "no such route", "path": (req.path.as_str()), "index": "/"}),
                );
            }
            Some(allow) if req.method != allow => {
                self.counters.other.fetch_add(1, Ordering::Relaxed);
                return Response::json(
                    405,
                    &json!({
                        "error": "method not allowed",
                        "method": (req.method.as_str()),
                        "path": (req.path.as_str()),
                        "allow": (allow),
                    }),
                )
                .with_header("Allow", allow);
            }
            Some(_) => {}
        }
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match segments.as_slice() {
            [] => {
                self.counters.other.fetch_add(1, Ordering::Relaxed);
                index()
            }
            ["health"] => {
                self.counters.health.fetch_add(1, Ordering::Relaxed);
                self.health()
            }
            ["corpus", seed, "projects"] => {
                self.counters.corpus_projects.fetch_add(1, Ordering::Relaxed);
                self.corpus_projects(seed, req)
            }
            ["project", id, "history"] => {
                self.counters.project_history.fetch_add(1, Ordering::Relaxed);
                self.with_project(id, req, |p, _| project_history(p))
            }
            ["project", id, "pattern"] => {
                self.counters.project_pattern.fetch_add(1, Ordering::Relaxed);
                self.with_project(id, req, |p, _| project_pattern(p))
            }
            ["project", id, "diagnostics"] => {
                self.counters
                    .project_diagnostics
                    .fetch_add(1, Ordering::Relaxed);
                let default_seed = self.default_seed;
                self.with_project(id, req, move |p, req| {
                    project_diagnostics(p, req, default_seed)
                })
            }
            ["project", id, "schema"] => {
                self.counters.project_schema.fetch_add(1, Ordering::Relaxed);
                let default_seed = self.default_seed;
                self.with_project(id, req, move |p, req| {
                    project_schema(p, req, default_seed)
                })
            }
            ["project", id, "diff"] => {
                self.counters.project_diff.fetch_add(1, Ordering::Relaxed);
                let default_seed = self.default_seed;
                self.with_project(id, req, move |p, req| project_diff(p, req, default_seed))
            }
            ["project", id, "plan"] => {
                self.counters.project_plan.fetch_add(1, Ordering::Relaxed);
                let default_seed = self.default_seed;
                self.with_project(id, req, move |p, req| project_plan(p, req, default_seed))
            }
            ["project", id, "provenance", subject] => {
                self.counters
                    .project_provenance
                    .fetch_add(1, Ordering::Relaxed);
                let default_seed = self.default_seed;
                let subject = (*subject).to_owned();
                self.with_project(id, req, move |p, req| {
                    project_provenance(p, req, &subject, default_seed)
                })
            }
            ["project", id, "safety"] => {
                self.counters.project_safety.fetch_add(1, Ordering::Relaxed);
                let default_seed = self.default_seed;
                self.with_project(id, req, move |p, req| {
                    project_safety(p, req, default_seed)
                })
            }
            ["project", id, "commit"] => {
                self.counters.project_commit.fetch_add(1, Ordering::Relaxed);
                self.project_commit(id, req)
            }
            ["changes"] => {
                self.counters.changes.fetch_add(1, Ordering::Relaxed);
                self.changes(req)
            }
            ["experiments", id] => {
                self.counters.experiments.fetch_add(1, Ordering::Relaxed);
                self.experiment(id)
            }
            ["chart", file] => {
                self.counters.chart.fetch_add(1, Ordering::Relaxed);
                self.chart(file, req)
            }
            _ => {
                self.counters.other.fetch_add(1, Ordering::Relaxed);
                Response::json(
                    404,
                    &json!({"error": "no such route", "path": (req.path.as_str()), "index": "/"}),
                )
            }
        }
    }

    /// [`AppState::handle`] behind the request guard: a per-route circuit
    /// breaker decides admission, an admitted request runs on its own
    /// thread under the configured wall-clock deadline, and its outcome
    /// (status `< 500`) feeds the breaker back.
    ///
    /// - breaker **shed** → a degraded `200` from the per-route cache when
    ///   the exact target was answered before, else `503`;
    /// - deadline exceeded → `504` (the handler finishes detached and its
    ///   response is discarded);
    /// - handler panic → `500`.
    ///
    /// `/health` is exempt from the guard entirely — it must stay
    /// answerable while everything else is on fire, and the chaos fault
    /// plans never reach it.
    pub fn handle_guarded(self: &Arc<Self>, req: &Request) -> Response {
        let route = route_key(&req.path);
        if route == "health" {
            return self.handle(req);
        }
        let now = Instant::now();
        let gate = lock(&self.breakers)
            .entry(route)
            .or_default()
            .check(now, self.guard.breaker_cooldown);
        if gate == Gate::Shed {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return self.shed_response(route, req);
        }

        let (tx, rx) = mpsc::channel();
        let state = Arc::clone(self);
        let request = req.clone();
        std::thread::spawn(move || {
            fault::slow_point(fault::site::SERVE_REQUEST, &request.target);
            // The receiver may have given up at the deadline; a dead
            // channel just discards the late response.
            let _ = tx.send(state.handle(&request));
        });
        let resp = match rx.recv_timeout(self.guard.deadline) {
            Ok(resp) => resp,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.counters.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
                Response::json(
                    504,
                    &json!({
                        "error": "request deadline exceeded",
                        "route": route,
                        "deadline_ms": (self.guard.deadline.as_millis() as u64),
                    }),
                )
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Response::json(
                500,
                &json!({"error": "handler panicked", "route": route}),
            ),
        };
        let ok = resp.status < 500;
        lock(&self.breakers)
            .entry(route)
            .or_default()
            .record(ok, Instant::now());
        if ok && resp.status == 200 && resp.content_type == "application/json" {
            lock(&self.degraded).insert(route, (req.target.clone(), resp.body.clone()));
        }
        resp
    }

    /// The answer for a shed request: the cached last-good body for the
    /// exact same target, wrapped and marked `degraded`, else a `503`.
    fn shed_response(&self, route: &'static str, req: &Request) -> Response {
        let cached = lock(&self.degraded)
            .get(route)
            .filter(|(target, _)| *target == req.target)
            .and_then(|(_, body)| std::str::from_utf8(body).ok().map(str::to_owned))
            .and_then(|body| serde_json::from_str(&body).ok());
        match cached {
            Some(value) => Response::json(
                200,
                &json!({
                    "degraded": true,
                    "route": route,
                    "reason": "circuit open, serving cached answer",
                    "cached": value,
                }),
            ),
            None => Response::json(
                503,
                &json!({
                    "error": "circuit open",
                    "route": route,
                    "retry_after_ms": (self.guard.breaker_cooldown.as_millis() as u64),
                }),
            ),
        }
    }

    fn health(&self) -> Response {
        // Per-stage hit/miss/wall-time counters of the corpus ingestion
        // pipeline, in pipeline order — the live view of the same numbers
        // `stage_bench` writes to BENCH_stages.json.
        let stages: Vec<Value> = schemachron_corpus::pipeline::stage_stats()
            .iter()
            .map(|s| {
                json!({
                    "stage": (s.stage),
                    "hits": (s.hits),
                    "misses": (s.misses),
                    "quarantined": (s.quarantined),
                    "busy_ms": (s.busy_ns as f64 / 1e6),
                })
            })
            .collect();
        let now = Instant::now();
        let breakers: BTreeMap<&'static str, &'static str> = lock(&self.breakers)
            .iter()
            .map(|(route, b)| (*route, b.state_name(now, self.guard.breaker_cooldown)))
            .collect();
        let injected: BTreeMap<String, u64> = fault::counters();
        Response::json(
            200,
            &json!({
                "status": "ok",
                "service": "schemachron-serve",
                "seed": (self.default_seed),
                "uptime_secs": (self.started.elapsed().as_secs_f64()),
                "corpora_built": (schemachron_corpus::Corpus::build_count()),
                "stage_cache_entries": (schemachron_corpus::pipeline::stage_cache_len()),
                "stages": stages,
                "requests": (self.counters.snapshot()),
                "guard": {
                    "deadline_ms": (self.guard.deadline.as_millis() as u64),
                    "breaker_cooldown_ms": (self.guard.breaker_cooldown.as_millis() as u64),
                    "breakers": (serde_json::to_value(&breakers).unwrap_or(Value::Null)),
                },
                "faults": {
                    "active": (fault::is_active()),
                    "injected_total": (fault::injected_total()),
                    "injected": (serde_json::to_value(&injected).unwrap_or(Value::Null)),
                },
            }),
        )
    }

    fn corpus_projects(&self, seed: &str, req: &Request) -> Response {
        let Ok(seed) = seed.parse::<u64>() else {
            return Response::json(
                400,
                &json!({"error": "seed must be an unsigned integer", "got": seed}),
            );
        };
        let filter = match req.query_param("pattern") {
            None => None,
            Some(name) => match Pattern::from_name(name) {
                Some(p) => Some(p),
                None => {
                    let valid: Vec<&str> = Pattern::ALL.iter().map(|p| p.name()).collect();
                    return Response::json(
                        400,
                        &json!({"error": "unknown pattern", "got": name, "valid": valid}),
                    );
                }
            },
        };
        let ctx = self.context(seed);
        let projects: Vec<Value> = ctx
            .corpus
            .projects()
            .iter()
            .filter(|p| filter.is_none_or(|f| p.assigned == f))
            .map(|p| {
                json!({
                    "name": (p.card.name.as_str()),
                    "pattern": (p.assigned.name()),
                    "family": (p.assigned.family().name()),
                    "exception": (p.exception),
                    "pup_months": (p.metrics.pup_months),
                    "birth_index": (p.metrics.birth_index),
                    "total_activity": (p.metrics.total_activity),
                })
            })
            .collect();
        Response::json(
            200,
            &json!({"seed": seed, "count": (projects.len()), "projects": projects}),
        )
    }

    /// Looks up `id` in the request's corpus (`?seed=`, else the default)
    /// and applies `render`; `404` with the seed echoed when absent.
    fn with_project(
        &self,
        id: &str,
        req: &Request,
        render: impl Fn(&CorpusProject, &Request) -> Response,
    ) -> Response {
        let seed = match req.query_param("seed") {
            None => self.default_seed,
            Some(s) => match s.parse::<u64>() {
                Ok(v) => v,
                Err(_) => {
                    return Response::json(
                        400,
                        &json!({"error": "seed must be an unsigned integer", "got": s}),
                    )
                }
            },
        };
        let ctx = self.context(seed);
        match ctx.corpus.projects().iter().find(|p| p.card.name == id) {
            Some(p) => render(p, req),
            None => Response::json(
                404,
                &json!({
                    "error": "no such project",
                    "id": id,
                    "seed": seed,
                    "hint": (format!("GET /corpus/{seed}/projects lists valid ids")),
                }),
            ),
        }
    }

    /// `POST /project/{id}/commit` — appends one commit to the project's
    /// WAL (durable *before* the ack), re-runs exactly one classification
    /// chain, and announces the pattern transition on the change feed.
    /// Idempotent via client sequence numbers: `201` acknowledges a new
    /// append, `200` a duplicate or out-of-order retry, and a gap is
    /// refused with `409` naming the expected sequence.
    fn project_commit(&self, id: &str, req: &Request) -> Response {
        let Ok(body) = std::str::from_utf8(&req.body) else {
            return Response::json(400, &json!({"error": "commit body must be UTF-8 JSON"}));
        };
        let value: Value = match serde_json::from_str(body) {
            Ok(v) => v,
            Err(_) => {
                return Response::json(
                    400,
                    &json!({
                        "error": "unparsable commit body",
                        "hint": "POST a JSON object: {\"seq\": n, \"date\": \"YYYY-MM-DD\", \"sql\": \"...\"}",
                    }),
                )
            }
        };
        let (Some(seq), Some(date), Some(sql)) = (
            value.get("seq").and_then(Value::as_u64),
            value.get("date").and_then(Value::as_str),
            value.get("sql").and_then(Value::as_str),
        ) else {
            return Response::json(
                400,
                &json!({
                    "error": "commit body needs `seq` (integer), `date` (YYYY-MM-DD) and `sql` (string)",
                }),
            );
        };
        match self.with_stream_store(|store| store.append(id, seq, date, sql)) {
            Err(resp) => resp,
            Ok(Ok(outcome)) => {
                let status = if matches!(outcome, Append::Appended { .. }) {
                    201
                } else {
                    200
                };
                Response::json(status, &stream_render::ack_json(id, &outcome))
            }
            Ok(Err(StreamError::SequenceGap { expected, got })) => Response::json(
                409,
                &json!({
                    "error": "sequence gap",
                    "project": (id),
                    "expected_seq": (expected),
                    "got": (got),
                }),
            ),
            Ok(Err(StreamError::Wal(e))) => Response::json(
                500,
                &json!({"error": "append not durable", "detail": (e.to_string())}),
            ),
            Ok(Err(e)) => Response::json(400, &json!({"error": (e.to_string())})),
        }
    }

    /// `GET /changes?since=cursor` — the change feed. Answers a bounded
    /// batch of transition events after `since` as JSON, or as Server-Sent
    /// Events when `format=sse` (or `Accept: text/event-stream`). SSE
    /// `id:` lines carry cursors and a `Last-Event-ID` header resumes
    /// exactly like `?since=`. `wait_ms` long-polls (capped below the
    /// request deadline) until an event arrives; a subscriber that fell
    /// out of the bounded retention window gets a `lagged` marker.
    fn changes(&self, req: &Request) -> Response {
        let since = match (req.query_param("since"), req.header("last-event-id")) {
            (Some(raw), _) | (None, Some(raw)) => match raw.parse::<u64>() {
                Ok(v) => v,
                Err(_) => {
                    return Response::json(
                        400,
                        &json!({"error": "cursor must be an unsigned integer", "got": (raw)}),
                    )
                }
            },
            (None, None) => 0,
        };
        let max = match req.query_param("max") {
            None => 64,
            Some(raw) => match raw.parse::<usize>() {
                Ok(v) if v >= 1 => v.min(FEED_CAPACITY),
                _ => {
                    return Response::json(
                        400,
                        &json!({"error": "max must be a positive count", "got": (raw)}),
                    )
                }
            },
        };
        let wait = match req.query_param("wait_ms") {
            None => Duration::ZERO,
            Some(raw) => match raw.parse::<u64>() {
                Ok(ms) => Duration::from_millis(ms),
                Err(_) => {
                    return Response::json(
                        400,
                        &json!({"error": "wait_ms must be milliseconds", "got": (raw)}),
                    )
                }
            },
        };
        // The long-poll must answer before the request guard would turn
        // it into a 504.
        let wait = wait.min(self.guard.deadline.saturating_sub(Duration::from_millis(100)));
        let started = Instant::now();
        let batch = loop {
            let batch = match self.with_stream_store(|store| store.events_since(since, max)) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            if !batch.events.is_empty() || batch.lagged || started.elapsed() >= wait {
                break batch;
            }
            // Poll without holding the store lock across the sleep.
            std::thread::sleep(Duration::from_millis(20));
        };
        let sse = req.query_param("format") == Some("sse")
            || req
                .header("accept")
                .is_some_and(|a| a.contains("text/event-stream"));
        if sse {
            Response::sse(stream_render::sse_frames(&batch))
        } else {
            Response::json(200, &stream_render::changes_json(since, &batch))
        }
    }

    fn experiment(&self, id: &str) -> Response {
        let ctx = self.context(self.default_seed);
        match run_experiment(id, &ctx) {
            Some((_text, value)) => Response::json(200, &value),
            None => Response::json(
                404,
                &json!({
                    "error": "unknown experiment",
                    "got": id,
                    "valid": (EXPERIMENT_IDS.to_vec()),
                }),
            ),
        }
    }

    fn chart(&self, file: &str, req: &Request) -> Response {
        let Some(id) = file.strip_suffix(".svg") else {
            return Response::json(
                404,
                &json!({"error": "charts are served as {id}.svg", "got": file}),
            );
        };
        let defaults = SvgChart::default();
        let dim = |key: &str, fallback: u32| -> u32 {
            req.query_param(key)
                .and_then(|v| v.parse().ok())
                .unwrap_or(fallback)
        };
        let chart = SvgChart::sized(dim("w", defaults.width), dim("h", defaults.height));
        self.with_project(id, req, move |p, _| Response::svg(chart.render(&p.history)))
    }
}

/// `GET /` — a machine-readable route index.
fn index() -> Response {
    Response::json(
        200,
        &json!({
            "service": "schemachron-serve",
            "routes": [
                "GET /health",
                "GET /corpus/{seed}/projects[?pattern=name]",
                "GET /project/{id}/history[?seed=s]",
                "GET /project/{id}/pattern[?seed=s]",
                "GET /project/{id}/diagnostics[?seed=s]",
                "GET /project/{id}/schema?asof=YYYY-MM[&seed=s&k=months]",
                "GET /project/{id}/diff?from=YYYY-MM&to=YYYY-MM[&seed=s&k=months]",
                "GET /project/{id}/plan?from=YYYY-MM&to=YYYY-MM&dialect=pg|mysql|sqlite[&rebuild=no&seed=s&k=months]",
                "GET /project/{id}/provenance/{table}[.{column}][?seed=s&k=months]",
                "GET /project/{id}/safety[?seed=s]",
                "GET /experiments/{id}",
                "GET /chart/{id}.svg[?seed=s&w=px&h=px]",
                "POST /project/{id}/commit  {\"seq\": n, \"date\": \"YYYY-MM-DD\", \"sql\": \"...\"}",
                "GET /changes[?since=cursor&max=n&wait_ms=t&format=sse]",
            ],
        }),
    )
}

/// `GET /project/{id}/history` — the monthly heartbeats.
fn project_history(p: &CorpusProject) -> Response {
    let h = &p.history;
    Response::json(
        200,
        &json!({
            "name": (h.name()),
            "start": (h.start().to_string()),
            "months": (h.month_count()),
            "schema": (h.schema_heartbeat().values()),
            "source": (h.source_heartbeat().values()),
            "expansion_total": (h.expansion_total()),
            "maintenance_total": (h.maintenance_total()),
        }),
    )
}

/// `GET /project/{id}/pattern` — classification plus the Table-1 label
/// tuple and the underlying §3.2 metrics.
fn project_pattern(p: &CorpusProject) -> Response {
    let l = &p.labels;
    let strict = classify(l);
    let (nearest, violation_weight) = classify_nearest(l);
    Response::json(
        200,
        &json!({
            "name": (p.card.name.as_str()),
            "assigned": (p.assigned.name()),
            "family": (p.assigned.family().name()),
            "exception": (p.exception),
            "classified": (strict.map(|c| c.name())),
            "nearest": {
                "pattern": (nearest.name()),
                "violation_weight": violation_weight,
            },
            "labels": {
                "birth_volume": (l.birth_volume.label()),
                "birth_point": (l.birth_point.label()),
                "topband_point": (l.topband_point.label()),
                "interval_birth_to_top": (l.interval_birth_to_top.label()),
                "interval_top_to_end": (l.interval_top_to_end.label()),
                "active_growth": (l.active_growth.label()),
                "active_pup": (l.active_pup.label()),
                "active_growth_months": (l.active_growth_months),
                "has_single_vault": (l.has_single_vault),
            },
            "metrics": (serde_json::to_value(&p.metrics).unwrap_or(Value::Null)),
        }),
    )
}

/// Re-resolves the seed `with_project` already validated (malformed
/// `?seed=` was rejected with a 400 before any of these handlers run).
fn resolved_seed(req: &Request, default_seed: u64) -> u64 {
    req.query_param("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_seed)
}

/// Parses a required `?{key}=YYYY-MM` month through the checked
/// [`MonthId`] path: missing or malformed values answer `400` with a hint
/// (out-of-range months like `2009-13` never wrap around silently).
fn month_param(req: &Request, key: &str) -> Result<MonthId, Response> {
    let Some(raw) = req.query_param(key) else {
        return Err(Response::json(
            400,
            &json!({
                "error": (format!("missing `{key}` month parameter")),
                "hint": (format!("pass ?{key}=YYYY-MM, e.g. ?{key}=2009-03")),
            }),
        ));
    };
    raw.parse::<MonthId>().map_err(|e| {
        Response::json(
            400,
            &json!({
                "error": (e.to_string()),
                "got": raw,
                "hint": (format!("`{key}` takes a YYYY-MM month with month 01..=12")),
            }),
        )
    })
}

/// The cached as-of index for a project at the request's `?k=` checkpoint
/// spacing (default 12 months); malformed `?k=` answers `400`.
fn project_index(
    p: &CorpusProject,
    req: &Request,
    default_seed: u64,
) -> Result<Arc<AsOfArtifact>, Response> {
    let k = match req.query_param("k") {
        None => DEFAULT_K_MONTHS,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if k >= 1 => k,
            _ => {
                return Err(Response::json(
                    400,
                    &json!({
                        "error": "k must be a positive month count",
                        "got": raw,
                    }),
                ))
            }
        },
    };
    index_for(p, resolved_seed(req, default_seed), k).ok_or_else(|| {
        Response::json(
            404,
            &json!({
                "error": "project retains no schema versions to index",
                "id": (p.card.name.as_str()),
            }),
        )
    })
}

/// `422` for a parseable month outside the project's observed lifespan.
fn out_of_lifespan(index: &AsOfArtifact, key: &str, m: MonthId) -> Response {
    Response::json(
        422,
        &json!({
            "error": (format!(
                "`{key}` month {m} is outside the project's observed lifespan"
            )),
            "lifespan": {
                "start": (index.start().to_string()),
                "last": (index.last_month().to_string()),
                "months": (index.months()),
            },
        }),
    )
}

/// `GET /project/{id}/schema?asof=YYYY-MM` — the full logical schema as of
/// an arbitrary month, answered from the checkpointed as-of index.
fn project_schema(p: &CorpusProject, req: &Request, default_seed: u64) -> Response {
    let index = match project_index(p, req, default_seed) {
        Ok(index) => index,
        Err(resp) => return resp,
    };
    let m = match month_param(req, "asof") {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    match index.schema_as_of(m) {
        Some(schema) => Response::json(200, &asof_render::schema_json(&index, m, &schema)),
        None => out_of_lifespan(&index, "asof", m),
    }
}

/// `GET /project/{id}/diff?from=YYYY-MM&to=YYYY-MM` — the point-in-time
/// diff between the schemas of two months.
fn project_diff(p: &CorpusProject, req: &Request, default_seed: u64) -> Response {
    let index = match project_index(p, req, default_seed) {
        Ok(index) => index,
        Err(resp) => return resp,
    };
    let (from, to) = match (month_param(req, "from"), month_param(req, "to")) {
        (Ok(from), Ok(to)) => (from, to),
        (Err(resp), _) | (_, Err(resp)) => return resp,
    };
    for (key, m) in [("from", from), ("to", to)] {
        if !index.in_lifespan(m) {
            return out_of_lifespan(&index, key, m);
        }
    }
    match index.diff_between(from, to) {
        Some(d) => Response::json(200, &asof_render::diff_json(&index, from, to, &d)),
        None => out_of_lifespan(&index, "from", from),
    }
}

/// `GET /project/{id}/plan?from=YYYY-MM&to=YYYY-MM&dialect=pg|mysql|sqlite`
/// — the forward migration script that turns the `from` schema into the
/// `to` schema, rendered for one SQL dialect. `&rebuild=no` disables the
/// drop-and-recreate fallback; an op the dialect cannot express then
/// answers `422` with the offending op echoed. The 200 body is shared with
/// `schemachron plan --format json`, so CLI goldens and `curl` answers for
/// the same query are byte-identical.
fn project_plan(p: &CorpusProject, req: &Request, default_seed: u64) -> Response {
    let index = match project_index(p, req, default_seed) {
        Ok(index) => index,
        Err(resp) => return resp,
    };
    let dialect = match req.query_param("dialect") {
        Some(kw) => match schemachron_dialect::dialect_named(kw) {
            Some(d) => d,
            None => {
                return Response::json(
                    400,
                    &json!({
                        "error": (format!("unknown dialect `{kw}`")),
                        "expected": (schemachron_dialect::DIALECT_KEYWORDS.to_vec()),
                    }),
                )
            }
        },
        None => {
            return Response::json(
                400,
                &json!({
                    "error": "missing `dialect` parameter",
                    "expected": (schemachron_dialect::DIALECT_KEYWORDS.to_vec()),
                }),
            )
        }
    };
    let (from, to) = match (month_param(req, "from"), month_param(req, "to")) {
        (Ok(from), Ok(to)) => (from, to),
        (Err(resp), _) | (_, Err(resp)) => return resp,
    };
    let (from_schema, to_schema) = match (index.schema_as_of(from), index.schema_as_of(to)) {
        (Some(f), Some(t)) => (f, t),
        (None, _) => return out_of_lifespan(&index, "from", from),
        (_, None) => return out_of_lifespan(&index, "to", to),
    };
    let opts = schemachron_dialect::PlanOptions {
        allow_rebuild: req.query_param("rebuild") != Some("no"),
    };
    match schemachron_dialect::plan(&from_schema, &to_schema, dialect, &opts) {
        Ok(plan) => {
            let request = asof_render::plan_request(&index, from, to);
            Response::json(
                200,
                &schemachron_dialect::report::plan_json(&request, &plan),
            )
        }
        Err(e) => Response::json(422, &schemachron_dialect::report::plan_error_json(&e)),
    }
}

/// `GET /project/{id}/provenance/{table}[.{column}]` — which version
/// introduced (and, for dead subjects, ejected) a table or column.
fn project_provenance(
    p: &CorpusProject,
    req: &Request,
    subject: &str,
    default_seed: u64,
) -> Response {
    let index = match project_index(p, req, default_seed) {
        Ok(index) => index,
        Err(resp) => return resp,
    };
    let (table, column) = match subject.split_once('.') {
        Some((t, c)) => (t, Some(c)),
        None => (subject, None),
    };
    match index.provenance(table, column) {
        Some(prov) => Response::json(200, &asof_render::provenance_json(&index, &prov)),
        None => Response::json(
            404,
            &json!({
                "error": "no version ever defined this subject",
                "subject": subject,
                "hint": "provenance targets are {table} or {table}.{column}",
            }),
        ),
    }
}

/// `GET /project/{id}/safety` — the static safety analysis of the whole
/// history: every migration op classified on the lossless < recoverable <
/// lossy lattice with its synthesized inverse, plus the column-lineage
/// summary. The body is shared with `schemachron safety --format json`
/// (one renderer, one memoized artifact), so CLI goldens and `curl`
/// answers for the same project are byte-identical.
fn project_safety(p: &CorpusProject, req: &Request, default_seed: u64) -> Response {
    let artifact = schemachron_safety::safety_for(&p.card, resolved_seed(req, default_seed));
    Response::json(
        200,
        &schemachron_safety::render::safety_json(&artifact.analysis),
    )
}

/// `GET /project/{id}/diagnostics` — the static analyzer's findings for
/// this project, in the exact JSON shape `schemachron lint --format json`
/// emits per project (the renderer is shared).
fn project_diagnostics(p: &CorpusProject, req: &Request, default_seed: u64) -> Response {
    let report = schemachron_lint::lint_project(&p.card, resolved_seed(req, default_seed));
    Response::json(200, &report.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        Request::get(path)
    }

    fn body_json(r: &Response) -> Value {
        serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap()
    }

    #[test]
    fn routes_answer_with_expected_shapes() {
        let state = AppState::new(42);
        let name = {
            let ctx = state.context(42);
            ctx.corpus.projects()[0].card.name.clone()
        };

        let health = state.handle(&get("/health"));
        assert_eq!(health.status, 200);
        assert_eq!(body_json(&health)["status"].as_str(), Some("ok"));

        let listing = state.handle(&get("/corpus/42/projects"));
        assert_eq!(listing.status, 200);
        assert_eq!(body_json(&listing)["count"].as_u64(), Some(151));

        let filtered = state.handle(&get("/corpus/42/projects?pattern=flatliner"));
        let n = body_json(&filtered)["count"].as_u64().unwrap();
        assert!(n > 0 && n < 151, "{n}");

        let hist = state.handle(&get(&format!("/project/{name}/history")));
        assert_eq!(hist.status, 200);
        let hist_json = body_json(&hist);
        assert!(hist_json["months"].as_u64().unwrap() > 0);
        assert!(hist_json["schema"].as_array().is_some());

        let pat = state.handle(&get(&format!("/project/{name}/pattern")));
        assert_eq!(pat.status, 200);
        let pat_json = body_json(&pat);
        assert!(pat_json["labels"]["birth_point"].as_str().is_some());
        assert!(pat_json["metrics"]["pup_months"].as_u64().is_some());

        let chart = state.handle(&get(&format!("/chart/{name}.svg?w=320&h=200")));
        assert_eq!(chart.status, 200);
        assert_eq!(chart.content_type, "image/svg+xml");
        let svg = String::from_utf8(chart.body).unwrap();
        assert!(svg.starts_with("<svg") && svg.contains(r#"width="320""#), "{svg}");

        let diags = state.handle(&get(&format!("/project/{name}/diagnostics")));
        assert_eq!(diags.status, 200);
        let diags_json = body_json(&diags);
        // Same JSON shape as `schemachron lint --format json`: a sorted
        // diagnostics array plus the severity summary. A calibrated card
        // has no errors or warnings (narrowing notes are allowed).
        assert!(diags_json["diagnostics"].as_array().is_some(), "{diags_json}");
        assert_eq!(diags_json["summary"]["errors"].as_u64(), Some(0));
        assert_eq!(diags_json["summary"]["warnings"].as_u64(), Some(0));
        let direct = schemachron_lint::lint_project(
            &state.context(42).corpus.projects()[0].card,
            42,
        );
        assert_eq!(diags_json, direct.to_json());

        // Eight requests so far, all counted.
        assert_eq!(
            body_json(&state.handle(&get("/health")))["requests"]["total"].as_u64(),
            Some(8)
        );
    }

    #[test]
    fn asof_routes_answer_and_reject_bad_months() {
        // A fresh state: `routes_answer_with_expected_shapes` pins its own
        // request total and must not see these requests.
        let state = AppState::new(42);
        let (name, start, last) = {
            let ctx = state.context(42);
            // A project whose schema still changes after its first month,
            // so the start→last diff below is non-empty (a flatliner's
            // would be: its whole schema is born in month one).
            ctx.corpus
                .projects()
                .iter()
                .find_map(|p| {
                    let index = schemachron_asof::AsOfIndex::build(&p.history, 12)?;
                    let d = index.diff_between(index.start(), index.last_month())?;
                    (d.attribute_change_count() > 0).then(|| {
                        (
                            p.card.name.clone(),
                            index.start().to_string(),
                            index.last_month().to_string(),
                        )
                    })
                })
                .unwrap()
        };

        let ok = state.handle(&get(&format!("/project/{name}/schema?asof={last}")));
        assert_eq!(ok.status, 200);
        let ok_json = body_json(&ok);
        assert_eq!(ok_json["project"].as_str(), Some(name.as_str()));
        assert_eq!(ok_json["asof"].as_str(), Some(last.as_str()));
        assert!(ok_json["table_count"].as_u64().unwrap() > 0);
        assert!(ok_json["schema"]["tables"].as_object().is_some());

        let d = state.handle(&get(&format!(
            "/project/{name}/diff?from={start}&to={last}"
        )));
        assert_eq!(d.status, 200);
        let d_json = body_json(&d);
        assert!(d_json["attribute_changes"].as_u64().unwrap() > 0);

        // Any table of the final schema has provenance, and the route
        // accepts both `table` and `table.column` subjects.
        let table = ok_json["schema"]["tables"]
            .as_object()
            .and_then(|m| m.keys().next())
            .cloned()
            .unwrap();
        let prov = state.handle(&get(&format!("/project/{name}/provenance/{table}")));
        assert_eq!(prov.status, 200);
        let prov_json = body_json(&prov);
        assert_eq!(prov_json["alive"].as_bool(), Some(true));
        assert!(prov_json["introduced"]["month"].as_str().is_some());

        // Missing and malformed months: 400 with a hint, never 404.
        for bad in [
            format!("/project/{name}/schema"),
            format!("/project/{name}/schema?asof=2009-13"),
            format!("/project/{name}/schema?asof=March-2009"),
            format!("/project/{name}/diff?from={start}"),
            format!("/project/{name}/diff?from=x&to={last}"),
        ] {
            let r = state.handle(&get(&bad));
            assert_eq!(r.status, 400, "{bad}");
            assert!(body_json(&r)["hint"].as_str().is_some(), "{bad}");
        }
        // Parseable but outside the observed lifespan: 422, echoing it.
        let out = state.handle(&get(&format!("/project/{name}/schema?asof=1901-01")));
        assert_eq!(out.status, 422);
        assert_eq!(
            body_json(&out)["lifespan"]["start"].as_str(),
            Some(start.as_str())
        );
        // Bad `?k=` is also a 400; a ghost subject is a 404.
        let bad_k = state.handle(&get(&format!("/project/{name}/schema?asof={last}&k=zero")));
        assert_eq!(bad_k.status, 400);
        let ghost = state.handle(&get(&format!("/project/{name}/provenance/no_such_table")));
        assert_eq!(ghost.status, 404);
    }

    #[test]
    fn plan_route_renders_dialect_scripts_and_echoes_refusals() {
        // A fresh state: `routes_answer_with_expected_shapes` pins its own
        // request total and must not see these requests.
        let state = AppState::new(42);
        let (name, start, last) = {
            let ctx = state.context(42);
            ctx.corpus
                .projects()
                .iter()
                .find_map(|p| {
                    let index = schemachron_asof::AsOfIndex::build(&p.history, 12)?;
                    let d = index.diff_between(index.start(), index.last_month())?;
                    (d.attribute_change_count() > 0).then(|| {
                        (
                            p.card.name.clone(),
                            index.start().to_string(),
                            index.last_month().to_string(),
                        )
                    })
                })
                .unwrap()
        };

        // Every dialect plans the full lifespan; mysql always can (the
        // corpus dumps are its own flavor, rebuilds cover the rest).
        for dialect in schemachron_dialect::DIALECT_KEYWORDS {
            let r = state.handle(&get(&format!(
                "/project/{name}/plan?from={start}&to={last}&dialect={dialect}"
            )));
            assert_eq!(r.status, 200, "{dialect}");
            let body = body_json(&r);
            assert_eq!(body["project"].as_str(), Some(name.as_str()));
            assert_eq!(body["from"].as_str(), Some(start.as_str()));
            assert!(body["statement_count"].as_u64().unwrap() > 0, "{dialect}");
            assert!(body["statements"][0]["sql"].as_str().is_some(), "{dialect}");
        }

        // A same-month span plans an empty script.
        let empty = state.handle(&get(&format!(
            "/project/{name}/plan?from={start}&to={start}&dialect=pg"
        )));
        assert_eq!(empty.status, 200);
        assert_eq!(body_json(&empty)["statement_count"].as_u64(), Some(0));

        // Missing or unknown dialect: 400 listing the keywords.
        for bad in [
            format!("/project/{name}/plan?from={start}&to={last}"),
            format!("/project/{name}/plan?from={start}&to={last}&dialect=oracle"),
        ] {
            let r = state.handle(&get(&bad));
            assert_eq!(r.status, 400, "{bad}");
            let body = body_json(&r);
            assert!(body["error"].as_str().is_some(), "{bad}");
            assert_eq!(body["expected"][0].as_str(), Some("pg"), "{bad}");
        }
        // Months outside the lifespan: 422 echoing it, like /diff.
        let out = state.handle(&get(&format!(
            "/project/{name}/plan?from=1901-01&to={last}&dialect=pg"
        )));
        assert_eq!(out.status, 422);
        assert_eq!(
            body_json(&out)["lifespan"]["start"].as_str(),
            Some(start.as_str())
        );

        // `rebuild=no` on a span sqlite cannot express in place: 422 with
        // the offending op echoed as typed fields, not prose.
        let refused = state.handle(&get(
            "/project/curated-132/plan?from=2015-12&to=2017-06&dialect=sqlite&rebuild=no",
        ));
        assert_eq!(refused.status, 422);
        let body = body_json(&refused);
        assert_eq!(body["error"].as_str(), Some("unsupported_diff_op"));
        assert_eq!(body["dialect"].as_str(), Some("sqlite"));
        assert!(
            body["op"].as_str().unwrap().starts_with("alter_column "),
            "{body}"
        );
        assert_eq!(body["reason"].as_str(), Some("sqlite has no ALTER COLUMN"));
    }

    #[test]
    fn experiment_route_matches_registry_json() {
        let state = AppState::new(42);
        let resp = state.handle(&get("/experiments/exp_table2"));
        assert_eq!(resp.status, 200);
        let direct = run_experiment("exp_table2", &state.context(42)).unwrap().1;
        assert_eq!(body_json(&resp), direct);
    }

    #[test]
    fn error_paths_are_json() {
        let state = AppState::new(42);
        assert_eq!(state.handle(&get("/nope/nowhere")).status, 404);
        assert_eq!(state.handle(&get("/corpus/abc/projects")).status, 400);
        assert_eq!(
            state.handle(&get("/corpus/42/projects?pattern=zigzag")).status,
            400
        );
        assert_eq!(state.handle(&get("/experiments/exp_nope")).status, 404);
        assert_eq!(state.handle(&get("/project/ghost/pattern")).status, 404);
        assert_eq!(state.handle(&get("/project/ghost/history?seed=oops")).status, 400);
        assert_eq!(state.handle(&get("/chart/ghost.svg")).status, 404);
        assert_eq!(state.handle(&get("/chart/noext")).status, 404);
        let mut post = get("/health");
        post.method = "POST".into();
        assert_eq!(state.handle(&post).status, 405);
        for path in ["/nope", "/experiments/exp_nope"] {
            let r = state.handle(&get(path));
            assert!(body_json(&r)["error"].as_str().is_some(), "{path}");
        }
    }

    #[test]
    fn method_mismatch_routes_first_and_names_the_allowed_method() {
        let state = AppState::new(42);
        // A known GET route hit with POST: 405 carrying that route's Allow.
        let post_health = Request::post_json("/health", "{}");
        let r = state.handle(&post_health);
        assert_eq!(r.status, 405);
        assert_eq!(r.header("Allow"), Some("GET"));
        assert_eq!(body_json(&r)["allow"].as_str(), Some("GET"));
        // The POST-only commit route hit with GET: 405 with Allow: POST.
        let r = state.handle(&get("/project/p/commit"));
        assert_eq!(r.status, 405);
        assert_eq!(r.header("Allow"), Some("POST"));
        // An unknown path is 404 for every method — routing came first.
        let r = state.handle(&Request::post_json("/no/such/route", "{}"));
        assert_eq!(r.status, 404);
        assert!(r.header("Allow").is_none());
    }

    fn stream_state(tag: &str) -> (AppState, std::path::PathBuf) {
        let root = std::env::temp_dir().join(format!(
            "schemachron-serve-stream-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let state = AppState::with_stream_root(42, GuardConfig::default(), root.clone());
        (state, root)
    }

    fn commit(state: &AppState, project: &str, seq: u64, date: &str, sql: &str) -> Response {
        let body = format!(r#"{{"seq": {seq}, "date": "{date}", "sql": "{sql}"}}"#);
        state.handle(&Request::post_json(
            &format!("/project/{project}/commit"),
            &body,
        ))
    }

    #[test]
    fn commit_route_acks_appends_and_refuses_gaps() {
        let (state, root) = stream_state("commit");
        // First append: 201 with the transition in the ack.
        let r = commit(&state, "live-a", 1, "2020-01-10", "CREATE TABLE t (a INT);");
        assert_eq!(r.status, 201, "{:?}", String::from_utf8_lossy(&r.body));
        let ack = body_json(&r);
        assert_eq!(ack["status"].as_str(), Some("appended"));
        assert_eq!(ack["cursor"].as_u64(), Some(1));
        assert!(ack["transition"]["before"].is_null());
        assert!(ack["transition"]["after"].as_str().is_some());
        // A retried seq: 200 duplicate, nothing re-emitted.
        let r = commit(&state, "live-a", 1, "2020-01-10", "CREATE TABLE t (a INT);");
        assert_eq!(r.status, 200);
        assert_eq!(body_json(&r)["status"].as_str(), Some("duplicate"));
        // A gap: 409 naming the expected sequence.
        let r = commit(&state, "live-a", 7, "2020-02-10", "DROP TABLE t;");
        assert_eq!(r.status, 409);
        let gap = body_json(&r);
        assert_eq!(gap["expected_seq"].as_u64(), Some(2));
        assert_eq!(gap["got"].as_u64(), Some(7));
        // Bad input: 400s.
        assert_eq!(
            state
                .handle(&Request::post_json("/project/live-a/commit", "not json"))
                .status,
            400
        );
        assert_eq!(
            state
                .handle(&Request::post_json("/project/live-a/commit", r#"{"seq": 2}"#))
                .status,
            400
        );
        assert_eq!(
            commit(&state, "live-a", 2, "01/10/2020", "DROP TABLE t;").status,
            400
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn changes_route_serves_json_and_sse_with_resume() {
        let (state, root) = stream_state("changes");
        assert_eq!(commit(&state, "live-b", 1, "2020-01-10", "CREATE TABLE t (a INT);").status, 201);
        assert_eq!(
            commit(&state, "live-b", 2, "2021-06-10", "ALTER TABLE t ADD COLUMN b INT;").status,
            201
        );

        let r = state.handle(&get("/changes?since=0"));
        assert_eq!(r.status, 200);
        let body = body_json(&r);
        assert_eq!(body["events"].as_array().map(Vec::len), Some(2));
        assert_eq!(body["next_cursor"].as_u64(), Some(2));
        assert_eq!(body["lagged"].as_bool(), Some(false));
        assert_eq!(body["events"][0]["project"].as_str(), Some("live-b"));

        // `since` resumes mid-stream.
        let r = state.handle(&get("/changes?since=1"));
        assert_eq!(body_json(&r)["events"].as_array().map(Vec::len), Some(1));

        // SSE framing: ids carry cursors; Last-Event-ID resumes like since.
        let r = state.handle(&get("/changes?format=sse"));
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, "text/event-stream");
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("id: 1\nevent: transition\ndata: "), "{text}");
        let mut resume = get("/changes?format=sse");
        resume
            .headers
            .push(("last-event-id".to_owned(), "1".to_owned()));
        let r = state.handle(&resume);
        let text = String::from_utf8(r.body).unwrap();
        assert!(!text.contains("id: 1\n"), "{text}");
        assert!(text.contains("id: 2\n"), "{text}");

        // Bad cursors and counts are 400s.
        assert_eq!(state.handle(&get("/changes?since=x")).status, 400);
        assert_eq!(state.handle(&get("/changes?max=0")).status, 400);
        assert_eq!(state.handle(&get("/changes?wait_ms=soon")).status, 400);
        let _ = std::fs::remove_dir_all(&root);
    }
}
