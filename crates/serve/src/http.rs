//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Implements exactly the subset the service needs: a request line, headers
//! (only `Content-Length` is interpreted), and guarded limits — oversized
//! heads or declared bodies are rejected with `413` before any route code
//! runs, and a stalled client trips the socket read timeout into `408`.
//! Every connection carries one request and is closed after the response
//! (`Connection: close`), which keeps the worker pool's accounting trivial.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a declared request body. The service is read-only, so any
/// larger payload is rejected outright.
pub const MAX_BODY_BYTES: usize = 64 * 1024;
/// Socket read timeout: a client that stalls mid-request gets `408`.
pub const READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Socket write timeout: a client that stops draining gets dropped.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// How long [`finish`] waits for the peer to close after the response.
pub const DRAIN_TIMEOUT: Duration = Duration::from_millis(250);

/// Politely finishes a connection after the response has been written:
/// half-closes the write side so the peer sees EOF, then reads and discards
/// anything the client sent that was never consumed (unparsed body, bytes
/// past [`MAX_HEAD_BYTES`], a request bounced with `503`). Closing a socket
/// with unread bytes makes the kernel send `RST`, which can destroy the
/// response that was just written; draining first guarantees a clean `FIN`.
pub fn finish(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(DRAIN_TIMEOUT));
    let mut scratch = [0u8; 4096];
    let mut budget = MAX_HEAD_BYTES + MAX_BODY_BYTES;
    while let Ok(n) = stream.read(&mut scratch) {
        if n == 0 || budget <= n {
            break;
        }
        budget -= n;
    }
}

/// A parsed request: method, decoded path segments and query pairs.
#[derive(Clone, Debug)]
pub struct Request {
    /// The HTTP method verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The raw request target (path + query), for logging.
    pub target: String,
    /// Percent-decoded path, always starting with `/`.
    pub path: String,
    /// Percent-decoded `key=value` query pairs, in order.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// The first value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; maps 1:1 onto an error [`Response`].
#[derive(Debug)]
pub enum HttpError {
    /// The bytes do not form an HTTP/1.x request.
    Malformed(&'static str),
    /// The head or declared body exceeds the configured limits.
    TooLarge,
    /// The client stalled past [`READ_TIMEOUT`].
    Timeout,
    /// The connection died mid-request.
    Io(std::io::Error),
}

impl HttpError {
    /// The error as a JSON response.
    pub fn response(&self) -> Response {
        match self {
            HttpError::Malformed(why) => Response::json(
                400,
                &serde_json::json!({"error": "malformed request", "detail": (*why)}),
            ),
            HttpError::TooLarge => Response::json(
                413,
                &serde_json::json!({
                    "error": "request too large",
                    "max_head_bytes": MAX_HEAD_BYTES,
                    "max_body_bytes": MAX_BODY_BYTES,
                }),
            ),
            HttpError::Timeout => {
                Response::json(408, &serde_json::json!({"error": "request timeout"}))
            }
            HttpError::Io(_) => Response::json(
                400,
                &serde_json::json!({"error": "connection error"}),
            ),
        }
    }
}

/// Reads and parses one request head from `stream` (which should already
/// have its read timeout set). Any declared body is left unread — the
/// service answers and closes the connection regardless.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let n = stream.read(&mut chunk).map_err(|e| match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        })?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed before head end"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed("request line needs METHOD TARGET VERSION"));
    };
    if parts.next().is_some() || method.is_empty() || !target.starts_with('/') {
        return Err(HttpError::Malformed("bad request line shape"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("only HTTP/1.x is spoken here"));
    }
    // Headers: only Content-Length matters, and only as a size guard.
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let len: usize = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("unparsable Content-Length"))?;
            if len > MAX_BODY_BYTES {
                return Err(HttpError::TooLarge);
            }
        }
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = raw_query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    Ok(Request {
        method: method.to_owned(),
        target: target.to_owned(),
        path: percent_decode(raw_path),
        query,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decodes `%XX` escapes and `+`-as-space; invalid escapes pass through.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => match bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
            {
                Some(b) => {
                    out.push(b);
                    i += 2;
                }
                None => out.push(b'%'),
            },
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response ready to serialize onto the wire.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A pretty-printed JSON response.
    pub fn json(status: u16, value: &serde_json::Value) -> Response {
        let mut body = serde_json::to_string_pretty(value)
            .unwrap_or_else(|_| "{}".to_owned())
            .into_bytes();
        body.push(b'\n');
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// An SVG response.
    pub fn svg(document: String) -> Response {
        Response {
            status: 200,
            content_type: "image/svg+xml",
            body: document.into_bytes(),
        }
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Content",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Writes the response (head + body) to `w`.
    pub fn write_to(&self, w: &mut dyn Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nServer: schemachron-serve\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%2"), "bad%2");
        assert_eq!(percent_decode("%41%621"), "Ab1");
    }

    #[test]
    fn response_serializes_with_length() {
        let r = Response::json(404, &serde_json::json!({"error": "x"}));
        let mut out = Vec::new();
        r.write_to(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 404 Not Found\r\n"), "{s}");
        assert!(s.contains("Content-Type: application/json"), "{s}");
        assert!(s.contains(&format!("Content-Length: {}", r.body.len())), "{s}");
        assert!(s.ends_with("\"error\": \"x\"\n}\n"), "{s}");
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}
