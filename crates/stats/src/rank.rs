//! Ranking and rank correlation.

/// Assigns 1-based ranks with **average ranks for ties** (the convention
/// Spearman's ρ requires).
///
/// ```
/// use schemachron_stats::ranks;
/// assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaNs in rank input"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Tie group [i..=j]: average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Pearson product-moment correlation. Returns `NaN` when either side has
/// zero variance or fewer than two points.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation inputs must be same length");
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Spearman's rank correlation ρ (Pearson on tie-averaged ranks) — the
/// correlation used in Fig. 2 of the paper.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

/// The full Spearman correlation matrix of a set of equally long columns.
/// Entry `[i][j]` is ρ(columns\[i\], columns\[j\]); the diagonal is 1.
pub fn spearman_matrix(columns: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = columns.len();
    let ranked: Vec<Vec<f64>> = columns.iter().map(|c| ranks(c)).collect();
    let mut m = vec![vec![1.0; k]; k];
    for i in 0..k {
        for j in (i + 1)..k {
            let r = pearson(&ranked[i], &ranked[j]);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_without_ties() {
        assert_eq!(ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_with_tie_groups() {
        assert_eq!(ranks(&[5.0, 5.0, 5.0, 1.0]), vec![3.0, 3.0, 3.0, 1.0]);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_nan() {
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan());
        assert!(pearson(&[1.0], &[2.0]).is_nan());
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but non-linear: Spearman 1, Pearson < 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    fn spearman_known_value_with_ties() {
        // ranks x = [1, 2.5, 2.5, 4], ranks y = [1, 3, 2, 4]
        // → ρ = 4.5 / sqrt(4.5 * 5) = 0.948683...
        let r = spearman(&[1.0, 2.0, 2.0, 3.0], &[1.0, 3.0, 2.0, 4.0]);
        assert!((r - 0.948_683_298_050_513_8).abs() < 1e-12, "{r}");
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let cols = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![4.0, 3.0, 2.0, 1.0],
            vec![1.0, 3.0, 2.0, 4.0],
        ];
        let m = spearman_matrix(&cols);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, m[j][i]);
            }
        }
        assert!((m[0][1] + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }
}
