//! One module per reproduced table/figure; see the crate docs for the index.

mod ablation;
mod beyond;
mod figures;
mod forecast;
mod sections;
mod tables;

pub use ablation::{ablation, Ablation, SweepPoint};
pub use beyond::{co_evolution_exp, tables_exp, CoEvolutionExp, FkSplit, TablesExp};
pub use figures::{
    figure1, figure2, figure3, figure5, figure6, figure7, Figure1, Figure2, Figure3, Figure5,
    Figure6, Figure7,
};
pub use forecast::{forecast, Forecast, HorizonResult};
pub use sections::{
    family_mass, stats34, stats52, stats61, stats62, stats63, Stats34, Stats52, Stats61, Stats62,
    Stats63,
};
pub use tables::{figure4, table1, table2, Figure4, Table1, Table2};
