//! Pins one append→reclassify→feed transcript against
//! `goldens/stream/transcript.txt`, byte for byte, at `--jobs 1` and
//! `--jobs 8`.
//!
//! The transcript is the exact byte stream an HTTP client would read:
//! every `POST /project/golden-stream/commit` acknowledgement body in
//! order (including a duplicate retry's ack), then the full
//! `GET /changes?since=0` batch. The same renderers serve the CLI
//! (`schemachron append --format json`), so one golden pins both
//! transports.
//!
//! Regenerate after an intentional format change with
//! `SCHEMACHRON_UPDATE_GOLDENS=1 cargo test -p schemachron-cli --test
//! stream_golden` and review the diff.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::num::NonZeroUsize;
use std::path::PathBuf;

use schemachron_stream::{render, StreamStore};

/// The fixed chain the transcript streams: real DDL, dates spread so the
/// time-pattern classification moves as the chain grows.
const CHAIN: [(&str, &str); 4] = [
    ("2015-01-10", "CREATE TABLE accounts (id INT, PRIMARY KEY (id));"),
    ("2015-02-10", "ALTER TABLE accounts ADD COLUMN email TEXT;"),
    ("2015-03-10", "CREATE TABLE events (id INT, account_id INT, PRIMARY KEY (id));"),
    ("2019-06-10", "DROP TABLE events;"),
];

const PROJECT: &str = "golden-stream";

/// One serialized body, exactly as `Response::json` and the CLI's
/// `--format json` emit it: pretty-printed, trailing newline.
fn body(v: &serde_json::Value) -> String {
    let mut s = serde_json::to_string_pretty(v).unwrap();
    s.push('\n');
    s
}

/// Streams [`CHAIN`] through a fresh store and returns the transcript.
fn transcript(tag: &str) -> String {
    let root = std::env::temp_dir().join(format!(
        "schemachron-stream-golden-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let mut store = StreamStore::open(&root).expect("stream store opens");
    let mut out = String::new();
    for (i, (date, sql)) in CHAIN.iter().enumerate() {
        let ack = store
            .append(PROJECT, (i + 1) as u64, date, sql)
            .expect("append succeeds");
        out.push_str(&body(&render::ack_json(PROJECT, &ack)));
    }
    // A client retry of an already-acknowledged commit: the duplicate ack
    // is part of the wire contract, so the golden pins it too.
    let dup = store
        .append(PROJECT, 2, CHAIN[1].0, CHAIN[1].1)
        .expect("duplicate re-send is accepted");
    out.push_str(&body(&render::ack_json(PROJECT, &dup)));
    // The feed: every appended transition, nothing for the duplicate.
    out.push_str(&body(&render::changes_json(0, &store.events_since(0, 64))));
    drop(store);
    let _ = std::fs::remove_dir_all(&root);
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../goldens/stream/transcript.txt")
}

#[test]
fn transcript_is_byte_identical_to_the_golden_at_jobs_1_and_8() {
    schemachron_corpus::set_jobs(Some(NonZeroUsize::new(1).unwrap()));
    let serial = transcript("j1");
    schemachron_corpus::set_jobs(Some(NonZeroUsize::new(8).unwrap()));
    let parallel = transcript("j8");
    schemachron_corpus::set_jobs(None);
    assert_eq!(serial, parallel, "worker count leaked into the transcript");

    let path = golden_path();
    if std::env::var_os("SCHEMACHRON_UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &serial).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with SCHEMACHRON_UPDATE_GOLDENS=1",
            path.display()
        )
    });
    assert_eq!(
        golden, serial,
        "the streaming transcript drifted from goldens/stream/transcript.txt; \
         if the change is intentional, regenerate with SCHEMACHRON_UPDATE_GOLDENS=1"
    );
}

#[test]
fn cli_append_ack_matches_the_golden_transcript_prefix() {
    // CLI-vs-HTTP byte parity: `schemachron append --format json` must
    // print exactly the first ack body of the golden transcript.
    let wal = std::env::temp_dir().join(format!(
        "schemachron-stream-golden-cli-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&wal);
    let args: Vec<String> = [
        "append",
        PROJECT,
        "--seq",
        "1",
        "--date",
        CHAIN[0].0,
        "--sql",
        CHAIN[0].1,
        "--wal-dir",
        wal.to_str().unwrap(),
        "--format",
        "json",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let mut out = Vec::new();
    schemachron_cli::run(&args, &mut out).expect("append succeeds");
    let printed = String::from_utf8(out).unwrap();
    let _ = std::fs::remove_dir_all(&wal);

    let golden = std::fs::read_to_string(golden_path())
        .expect("golden transcript present (SCHEMACHRON_UPDATE_GOLDENS=1 regenerates)");
    assert!(
        golden.starts_with(&printed),
        "CLI ack is not the transcript prefix:\n{printed}"
    );
}
