//! Project cards and their resolution into monthly activity schedules.
//!
//! A [`Card`] is the concrete plan for one synthetic project: where in its
//! life the schema is born, when the top band is reached, how many active
//! growth months it has and how its activity volume is split. [`Schedule`]
//! turns the plan into exact per-month attribute-change budgets, which the
//! materializer then realizes as DDL.

use std::error::Error;
use std::fmt;

use schemachron_core::Pattern;
use serde::{Deserialize, Serialize};

/// Why a [`Card`] cannot be resolved into a feasible schedule.
///
/// Carries the structured reason (and the offending numbers where they
/// matter), so callers can react programmatically; the `Display` text is the
/// human-facing message the CLI converts into its exit-code/hint scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// `duration < 13`: the study keeps projects longer than 12 months.
    TooShort {
        /// The card's PUP length in months.
        duration: u32,
    },
    /// The `birth ≤ top < duration` milestone ordering is violated.
    MilestoneOrder {
        /// Month of schema birth.
        birth: u32,
        /// Month of top-band attainment.
        top: u32,
        /// PUP length in months.
        duration: u32,
    },
    /// `total_units == 0`: zero-evolution projects are excluded by the study.
    ZeroEvolution,
    /// `top == birth` but the birth fraction cannot cross the 90% band.
    BirthFracTooLow,
    /// `top == birth` leaves no interior, yet `agm > 0` months were asked for.
    NoGrowthInterior,
    /// `top > birth` but the birth month alone already crosses the band.
    BirthFracTooHigh,
    /// More active growth months than strictly-interior slots.
    AgmOverflow {
        /// Requested active growth months.
        agm: u32,
        /// Available slots strictly between birth and top.
        slots: u32,
    },
    /// The unit budget cannot give every active month at least one unit
    /// while keeping the band crossing at the top month.
    InteriorBudget,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::TooShort { .. } => f.write_str("duration must exceed 12 months"),
            SpecError::MilestoneOrder { .. } => f.write_str("need birth <= top < duration"),
            SpecError::ZeroEvolution => f.write_str("zero-evolution projects are excluded"),
            SpecError::BirthFracTooLow => f.write_str("top at birth requires birth_frac >= 0.9"),
            SpecError::NoGrowthInterior => f.write_str("no growth interior exists"),
            SpecError::BirthFracTooHigh => {
                f.write_str("birth_frac too high for a later top month")
            }
            SpecError::AgmOverflow { agm, slots } => {
                write!(f, "{agm} active months cannot fit in {slots} interior slots")
            }
            SpecError::InteriorBudget => {
                f.write_str("cannot place interior units for the active months")
            }
        }
    }
}

impl Error for SpecError {}

/// The concrete plan for one synthetic project.
///
/// Invariants (checked by [`Card::schedule`]):
/// * `duration ≥ 13` (the study keeps projects longer than 12 months);
/// * `birth_month ≤ top_month < duration`;
/// * `agm` active months fit strictly between birth and top;
/// * `birth_frac ≥ 0.9` **iff** `top_month == birth_month`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Card {
    /// Project name (unique within the corpus).
    pub name: String,
    /// The pattern the project is annotated with (the ground truth of the
    /// manual classification the corpus reproduces).
    pub pattern: Pattern,
    /// Whether the project violates its pattern's strict definition — a
    /// Table 2 *exception*.
    pub exception: bool,
    /// Project lifetime in months (PUP).
    pub duration: u32,
    /// Month of schema birth (0-based).
    pub birth_month: u32,
    /// Month of top-band attainment.
    pub top_month: u32,
    /// Active months strictly between birth and top.
    pub agm: u32,
    /// Fraction of total activity at the birth month.
    pub birth_frac: f64,
    /// Total schema activity in affected attributes.
    pub total_units: u32,
    /// Activity placed strictly after the top month (the "tail change").
    /// Capped at just under 10% of the total so the top month stays the
    /// top-band crossing.
    pub tail_units: u32,
    /// Number of post-top active months carrying `tail_units`.
    pub tail_months: u32,
    /// Fraction of maintenance (vs expansion) DDL the materializer emits.
    pub maintenance_bias: f64,
}

/// A resolved monthly activity schedule: exact attribute-change budgets.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// `(month, units)` pairs in chronological order; months are unique and
    /// every `units > 0`.
    pub events: Vec<(u32, u32)>,
}

impl Schedule {
    /// Total units over all events.
    pub fn total(&self) -> u32 {
        self.events.iter().map(|(_, u)| u).sum()
    }
}

impl Card {
    /// Checks the card's feasibility without building the schedule — the
    /// non-panicking twin of [`Card::schedule`], used by the random card
    /// generator's generate-and-verify loop.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.duration < 13 {
            return Err(SpecError::TooShort {
                duration: self.duration,
            });
        }
        if !(self.birth_month <= self.top_month && self.top_month < self.duration) {
            return Err(SpecError::MilestoneOrder {
                birth: self.birth_month,
                top: self.top_month,
                duration: self.duration,
            });
        }
        if self.total_units == 0 {
            return Err(SpecError::ZeroEvolution);
        }
        let total = self.total_units;
        let topband = (0.9 * f64::from(total)).ceil() as u32;
        let birth_units = ((self.birth_frac * f64::from(total)).round() as u32).clamp(1, total);
        if self.top_month == self.birth_month {
            if birth_units < topband {
                return Err(SpecError::BirthFracTooLow);
            }
            if self.agm != 0 {
                return Err(SpecError::NoGrowthInterior);
            }
            return Ok(());
        }
        if birth_units >= topband {
            return Err(SpecError::BirthFracTooHigh);
        }
        let interior_slots = self.top_month - self.birth_month - 1;
        if self.agm > interior_slots {
            return Err(SpecError::AgmOverflow {
                agm: self.agm,
                slots: interior_slots,
            });
        }
        if self.agm > 0 {
            let tail = self.tail_units.min(total - topband);
            let before_band_room = topband - 1 - birth_units;
            let avail = total - birth_units - tail;
            if self.agm > before_band_room.min(avail.saturating_sub(1)) {
                return Err(SpecError::InteriorBudget);
            }
        }
        Ok(())
    }

    /// Resolves the card into a per-month activity schedule.
    ///
    /// The schedule is constructed so that, when measured by
    /// `schemachron-core`, the emergent metrics land exactly where the card
    /// says: birth at `birth_month`, top-band crossing at `top_month`,
    /// `agm` active months strictly in between, `tail_units` after.
    ///
    /// # Panics
    /// Panics when the card is internally inconsistent (see type-level
    /// invariants); corpus construction is a build-time affair, so a loud
    /// failure beats a silently mis-calibrated corpus. Use
    /// [`Card::try_schedule`] for the non-panicking form.
    pub fn schedule(&self) -> Schedule {
        match self.try_schedule() {
            Ok(s) => s,
            Err(e) => panic!("{}: {e}", self.name),
        }
    }

    /// Resolves the card into a schedule, returning the structured
    /// infeasibility reason instead of panicking — the CLI-facing twin of
    /// [`Card::schedule`].
    pub fn try_schedule(&self) -> Result<Schedule, SpecError> {
        self.validate()?;
        let total = self.total_units;
        let topband = (0.9 * f64::from(total)).ceil() as u32;

        let birth_units = ((self.birth_frac * f64::from(total)).round() as u32).clamp(1, total);

        if self.top_month == self.birth_month {
            // The birth month itself crosses the top band.
            let rest = total - birth_units;
            let mut events = vec![(self.birth_month, birth_units)];
            events.extend(self.spread_tail(rest));
            return Ok(Schedule { events });
        }

        let interior_slots = self.top_month - self.birth_month - 1;

        // Cap the tail below what keeps the crossing at `top_month`.
        let max_tail = total - topband;
        let tail = self.tail_units.min(max_tail);

        // Interior gets `agm` months of visible steps (about half of an even
        // share each), under two caps: the band must not be crossed before
        // the top month, and the top month must keep at least one unit.
        let before_band_room = topband - 1 - birth_units; // max interior total
        let avail = total - birth_units - tail; // interior + top
        let mut interior_total = if self.agm == 0 {
            0
        } else {
            let step = (avail / (2 * (self.agm + 1))).max(1);
            (step * self.agm)
                .min(before_band_room)
                .min(avail.saturating_sub(1))
        };
        if self.agm > 0 && interior_total < self.agm {
            interior_total = self.agm.min(before_band_room).min(avail.saturating_sub(1));
        }
        if interior_total < self.agm {
            // Not enough room for one unit per active month: fail loudly,
            // the card is mis-calibrated.
            panic!(
                "{}: cannot place {} interior units for {} active months",
                self.name, interior_total, self.agm
            );
        }
        let top_units = total - birth_units - tail - interior_total;
        // The caps above always leave the crossing month at least one unit
        // (interior_total <= avail - 1), and validate() guaranteed room.
        assert!(top_units >= 1, "{}: top month lost its activity", self.name);
        // Re-check the band invariant after adjustments.
        assert!(
            birth_units + interior_total < topband,
            "{}: interior crosses the band",
            self.name
        );
        assert!(
            birth_units + interior_total + top_units >= topband,
            "{}: top month fails to cross the band",
            self.name
        );

        let mut events = vec![(self.birth_month, birth_units)];
        // Spread the active months evenly across the interior.
        if let Some(base) = interior_total.checked_div(self.agm) {
            let mut rem = interior_total % self.agm;
            for k in 0..self.agm {
                let month = self.birth_month
                    + 1
                    + ((u64::from(k) * u64::from(interior_slots)) / u64::from(self.agm)) as u32;
                let mut units = base;
                if rem > 0 {
                    units += 1;
                    rem -= 1;
                }
                events.push((month.min(self.top_month - 1), units));
            }
        }
        events.push((self.top_month, top_units));
        events.extend(self.spread_tail(tail));

        // Merge any collided months (possible when agm ~ interior_slots).
        events.sort_by_key(|(m, _)| *m);
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(events.len());
        for (m, u) in events {
            if u == 0 {
                continue;
            }
            match merged.last_mut() {
                Some((lm, lu)) if *lm == m => *lu += u,
                _ => merged.push((m, u)),
            }
        }
        let s = Schedule { events: merged };
        debug_assert_eq!(s.total(), total, "{}: unit budget must be exact", self.name);
        Ok(s)
    }

    /// Distributes tail units over `tail_months` months after the top.
    fn spread_tail(&self, tail: u32) -> Vec<(u32, u32)> {
        if tail == 0 || self.tail_months == 0 {
            return Vec::new();
        }
        let last = self.duration - 1;
        let span = last.saturating_sub(self.top_month);
        if span == 0 {
            return Vec::new();
        }
        let months = self.tail_months.min(span).min(tail);
        let base = tail / months;
        let mut rem = tail % months;
        let mut out = Vec::new();
        for k in 0..months {
            // Spread evenly over (top, last]; month k lands at the
            // (k+1)/months fraction of the remaining span, so the last tail
            // month is the project's final month.
            let month = self.top_month + ((k + 1) * span) / months;
            let mut units = base;
            if rem > 0 {
                units += 1;
                rem -= 1;
            }
            out.push((month.min(last), units));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_card() -> Card {
        Card {
            name: "t".into(),
            pattern: Pattern::RadicalSign,
            exception: false,
            duration: 40,
            birth_month: 1,
            top_month: 5,
            agm: 0,
            birth_frac: 0.8,
            total_units: 50,
            tail_units: 0,
            tail_months: 0,
            maintenance_bias: 0.15,
        }
    }

    #[test]
    fn simple_schedule_budget_is_exact() {
        let s = base_card().schedule();
        assert_eq!(s.total(), 50);
        assert_eq!(s.events.first().unwrap().0, 1);
        assert_eq!(s.events.last().unwrap().0, 5);
    }

    #[test]
    fn top_at_birth_needs_high_fraction() {
        let mut c = base_card();
        c.top_month = c.birth_month;
        c.birth_frac = 1.0;
        let s = c.schedule();
        assert_eq!(s.events, vec![(1, 50)]);
    }

    #[test]
    fn crossing_happens_exactly_at_top_month() {
        let c = Card {
            agm: 2,
            top_month: 10,
            ..base_card()
        };
        let s = c.schedule();
        let topband = (0.9 * 50.0f64).ceil() as u32; // 45
        let mut cum = 0;
        for (m, u) in &s.events {
            let before = cum;
            cum += u;
            if cum >= topband {
                assert_eq!(*m, 10, "crossing month");
                assert!(before < topband);
                break;
            }
        }
    }

    #[test]
    fn agm_months_land_strictly_inside() {
        let c = Card {
            agm: 3,
            top_month: 12,
            ..base_card()
        };
        let s = c.schedule();
        let interior: Vec<u32> = s
            .events
            .iter()
            .map(|(m, _)| *m)
            .filter(|&m| m > c.birth_month && m < c.top_month)
            .collect();
        assert_eq!(interior.len(), 3);
    }

    #[test]
    fn tail_respects_band_cap() {
        let c = Card {
            tail_units: 30, // would exceed 10% of 50; must be capped to 5
            tail_months: 2,
            ..base_card()
        };
        let s = c.schedule();
        let after_top: u32 = s
            .events
            .iter()
            .filter(|(m, _)| *m > c.top_month)
            .map(|(_, u)| u)
            .sum();
        assert!(after_top <= 5, "tail {after_top} exceeds 10% of total");
        assert_eq!(s.total(), 50);
    }

    #[test]
    fn months_are_unique_and_sorted() {
        let c = Card {
            agm: 5,
            top_month: 8,
            birth_month: 1,
            birth_frac: 0.4,
            ..base_card()
        };
        let s = c.schedule();
        let months: Vec<u32> = s.events.iter().map(|(m, _)| *m).collect();
        let mut sorted = months.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(months, sorted);
        assert!(s.events.iter().all(|(_, u)| *u > 0));
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn short_projects_rejected() {
        let mut c = base_card();
        c.duration = 12;
        let _ = c.schedule();
    }

    #[test]
    #[should_panic(expected = "birth_frac too high")]
    fn high_fraction_with_later_top_rejected() {
        let mut c = base_card();
        c.birth_frac = 0.95;
        let _ = c.schedule();
    }

    #[test]
    #[should_panic(expected = "birth_frac >= 0.9")]
    fn low_fraction_with_top_at_birth_rejected() {
        let mut c = base_card();
        c.top_month = c.birth_month;
        c.birth_frac = 0.5;
        let _ = c.schedule();
    }
}
