//! The in-text quantitative results: §3.4, §5.2, §6.1, §6.2, §6.3.

use std::collections::BTreeMap;

use serde::Serialize;

use schemachron_core::metrics::TimeMetrics;
use schemachron_core::predict::BirthBucket;
use schemachron_core::validate::{cohesion, LINE_POINTS};
use schemachron_core::{Family, Pattern};
use schemachron_model::ChangeKind;
use schemachron_stats::{median, quantile, shapiro_wilk, PinnedHistogram};

use crate::context::ExpContext;
use crate::report::{cell, pct, text_table};

// ----------------------------------------------------------------- §3.4

/// §3.4 — statistical properties of the time-related measures.
#[derive(Clone, Debug, Serialize)]
pub struct Stats34 {
    /// Per metric: 10-bucket pinned histogram rendering plus Shapiro–Wilk.
    pub metrics: Vec<MetricStats>,
    /// Projects born within the first 10% of the PUP (paper: ~74, half).
    pub born_first_10pct: usize,
    /// Projects reaching the top band within 25% of the PUP (paper: 64, 42%).
    pub top_within_25pct: usize,
    /// Projects with a single vault (paper: 88, 58%).
    pub vaulted: usize,
    /// Projects with zero active growth months (paper: 98, two thirds).
    pub zero_active_growth: usize,
    /// Projects with at most one active growth month (paper: 115, 76%).
    pub at_most_one_active: usize,
}

/// One metric's §3.4 row.
#[derive(Clone, Debug, Serialize)]
pub struct MetricStats {
    /// Metric name.
    pub name: String,
    /// Rendered pinned histogram.
    pub histogram: String,
    /// Shapiro–Wilk W.
    pub w: f64,
    /// Shapiro–Wilk p-value.
    pub p_value: f64,
}

/// Regenerates the §3.4 statistics.
pub fn stats34(ctx: &ExpContext) -> Stats34 {
    let projects = ctx.corpus.projects();
    let columns: Vec<(&str, Vec<f64>)> = vec![
        (
            "BirthVolume_pctTotal",
            projects
                .iter()
                .map(|p| p.metrics.birth_volume_pct_total)
                .collect(),
        ),
        (
            "PointOfBirth_pctPUP",
            projects.iter().map(|p| p.metrics.birth_pct_pup).collect(),
        ),
        (
            "PointTopBand_pctPUP",
            projects.iter().map(|p| p.metrics.topband_pct_pup).collect(),
        ),
        (
            "IntervalBirthToTop_pctPUP",
            projects
                .iter()
                .map(|p| p.metrics.interval_birth_to_top_pct)
                .collect(),
        ),
        (
            "IntervalTopToEnd_pctPUP",
            projects
                .iter()
                .map(|p| p.metrics.interval_top_to_end_pct)
                .collect(),
        ),
        (
            "Active_pctGrowth",
            projects
                .iter()
                .map(|p| p.metrics.active_pct_growth)
                .collect(),
        ),
    ];
    let metrics = columns
        .into_iter()
        .map(|(name, values)| {
            let h = PinnedHistogram::unit(&values);
            let sw = shapiro_wilk(&values).expect("151 valid observations");
            MetricStats {
                name: name.to_owned(),
                histogram: h.render(),
                w: sw.w,
                p_value: sw.p_value,
            }
        })
        .collect();
    Stats34 {
        metrics,
        born_first_10pct: projects
            .iter()
            .filter(|p| p.metrics.birth_pct_pup <= 0.10)
            .count(),
        top_within_25pct: projects
            .iter()
            .filter(|p| p.metrics.topband_pct_pup <= 0.25)
            .count(),
        vaulted: projects
            .iter()
            .filter(|p| p.metrics.has_single_vault)
            .count(),
        zero_active_growth: projects
            .iter()
            .filter(|p| p.metrics.active_growth_months == 0)
            .count(),
        at_most_one_active: projects
            .iter()
            .filter(|p| p.metrics.active_growth_months <= 1)
            .count(),
    }
}

impl Stats34 {
    /// Renders the section report.
    pub fn render(&self) -> String {
        let mut out = String::from("§3.4 — statistical properties of time-related measures\n\n");
        let header = vec![
            cell("metric"),
            cell("histogram 0:[..]:1"),
            cell("W"),
            cell("p"),
        ];
        let rows: Vec<Vec<String>> = self
            .metrics
            .iter()
            .map(|m| {
                vec![
                    cell(&m.name),
                    cell(&m.histogram),
                    cell(format!("{:.3}", m.w)),
                    cell(format!("{:.2e}", m.p_value)),
                ]
            })
            .collect();
        out.push_str(&text_table(&header, &rows));
        out.push_str(&format!(
            "\nborn in first 10% of time:      {} / 151  (paper: ~74)\n\
             top band within 25% of PUP:     {} / 151  (paper: 64 = 42%)\n\
             single vault:                   {} / 151  (paper: 88 = 58%)\n\
             zero active growth months:      {} / 151  (paper: 98 = 2/3)\n\
             at most 1 active growth month:  {} / 151  (paper: 115 = 76%)\n",
            self.born_first_10pct,
            self.top_within_25pct,
            self.vaulted,
            self.zero_active_growth,
            self.at_most_one_active,
        ));
        out
    }
}

// ----------------------------------------------------------------- §5.2

/// §5.2 — pattern cohesion: Mean Distance to Centroid of the 20-point
/// quantized lines, per pattern (paper: 0.06 … 1.25).
#[derive(Clone, Debug, Serialize)]
pub struct Stats52 {
    /// `(pattern, member count, MDC)` rows.
    pub rows: Vec<(Pattern, usize, f64)>,
}

/// Regenerates the §5.2 cohesion analysis.
pub fn stats52(ctx: &ExpContext) -> Stats52 {
    let mut lines: BTreeMap<Pattern, Vec<Vec<f64>>> = BTreeMap::new();
    for p in ctx.corpus.projects() {
        lines
            .entry(p.assigned)
            .or_default()
            .push(TimeMetrics::quantized_line(&p.history, LINE_POINTS));
    }
    let mdc = cohesion(&lines);
    let rows = Pattern::ALL
        .iter()
        .map(|&p| (p, lines.get(&p).map_or(0, Vec::len), mdc[&p]))
        .collect();
    Stats52 { rows }
}

impl Stats52 {
    /// The smallest and largest MDC over all patterns.
    pub fn range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(_, _, v) in &self.rows {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Renders the cohesion table.
    pub fn render(&self) -> String {
        let header = vec![cell("Pattern"), cell("#"), cell("MDC (20-dim lines)")];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(p, n, v)| vec![cell(p.name()), cell(n), cell(format!("{v:.3}"))])
            .collect();
        let (lo, hi) = self.range();
        format!(
            "§5.2 — pattern cohesion (Mean Distance to Centroid)\n\n{}\nMDC range: {:.3} … {:.3}  (paper: 0.06 … 1.25)\n",
            text_table(&header, &rows),
            lo,
            hi
        )
    }
}

// ----------------------------------------------------------------- §6.1

/// §6.1 — relationship of the patterns to total schema activity (after
/// birth): medians and quartiles per pattern, plus the statistical
/// separation of the two "active" patterns from the rest.
#[derive(Clone, Debug, Serialize)]
pub struct Stats61 {
    /// `(pattern, q25, median, q75, paper median)` rows.
    pub rows: Vec<(Pattern, f64, f64, f64, f64)>,
    /// Mann–Whitney U of {Smoking Funnel ∪ Regularly Curated} vs the rest:
    /// `(U, two-sided p, common-language effect size)`.
    pub separation: (f64, f64, f64),
}

/// Regenerates the §6.1 activity analysis.
pub fn stats61(ctx: &ExpContext) -> Stats61 {
    let paper: BTreeMap<Pattern, f64> = BTreeMap::from([
        (Pattern::Flatliner, 0.0),
        (Pattern::RadicalSign, 13.0),
        (Pattern::Sigmoid, 2.0),
        (Pattern::LateRiser, 0.0),
        (Pattern::QuantumSteps, 22.0),
        (Pattern::RegularlyCurated, 250.0),
        (Pattern::Siesta, 17.0),
        (Pattern::SmokingFunnel, 189.0),
    ]);
    let rows = Pattern::ALL
        .iter()
        .map(|&p| {
            let v: Vec<f64> = ctx
                .corpus
                .of_pattern(p)
                .map(|x| x.metrics.activity_after_birth)
                .collect();
            (
                p,
                quantile(&v, 0.25),
                median(&v),
                quantile(&v, 0.75),
                paper[&p],
            )
        })
        .collect();
    let active: Vec<f64> = ctx
        .corpus
        .projects()
        .iter()
        .filter(|p| {
            matches!(
                p.assigned,
                Pattern::SmokingFunnel | Pattern::RegularlyCurated
            )
        })
        .map(|p| p.metrics.activity_after_birth)
        .collect();
    let rest: Vec<f64> = ctx
        .corpus
        .projects()
        .iter()
        .filter(|p| {
            !matches!(
                p.assigned,
                Pattern::SmokingFunnel | Pattern::RegularlyCurated
            )
        })
        .map(|p| p.metrics.activity_after_birth)
        .collect();
    let mw = schemachron_stats::mann_whitney_u(&active, &rest)
        .expect("both groups populated and non-degenerate");
    Stats61 {
        rows,
        separation: (mw.u, mw.p_value, mw.effect_size),
    }
}

impl Stats61 {
    /// Renders the activity table.
    pub fn render(&self) -> String {
        let header = vec![
            cell("Pattern"),
            cell("q25"),
            cell("median"),
            cell("q75"),
            cell("paper median"),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(p, q1, m, q3, paper)| {
                vec![
                    cell(p.name()),
                    cell(format!("{q1:.0}")),
                    cell(format!("{m:.1}")),
                    cell(format!("{q3:.0}")),
                    cell(format!("{paper:.0}")),
                ]
            })
            .collect();
        format!(
            "§6.1 — total schema activity after birth, per pattern\n\n{}\n\
             Smoking Funnel ∪ Regularly Curated vs the rest (Mann-Whitney U): \
             U = {:.0}, p = {:.2e}, effect size = {:.3}\n\
             (the paper: these two groups are quantitatively discriminated \
             by orders-of-magnitude higher activity)\n",
            text_table(&header, &rows),
            self.separation.0,
            self.separation.1,
            self.separation.2,
        )
    }
}

// ----------------------------------------------------------------- §6.2

/// §6.2 — headline rigidity probabilities given the point of birth.
#[derive(Clone, Debug, Serialize)]
pub struct Stats62 {
    /// Per bucket: `(bucket label, n, P(BeQuickOrBeDead), paper value)`.
    pub rows: Vec<(String, usize, f64, f64)>,
    /// `P(bucket)` marginals (the "when are schemata born" side result).
    pub born: [(String, f64); 4],
}

/// Regenerates the §6.2 analysis.
pub fn stats62(ctx: &ExpContext) -> Stats62 {
    let pred = ctx.birth_predictor();
    let paper = [0.75, 0.53, 0.53, 0.64];
    let rows = BirthBucket::ALL
        .iter()
        .zip(paper)
        .map(|(&b, paper)| {
            (
                b.label().to_owned(),
                pred.bucket_total(b),
                pred.rigidity_probability(b),
                paper,
            )
        })
        .collect();
    let born = [
        (
            "born at M0".to_owned(),
            pred.bucket_probability(BirthBucket::M0),
        ),
        (
            "born within first 6 months".to_owned(),
            pred.bucket_probability(BirthBucket::M0) + pred.bucket_probability(BirthBucket::M1toM6),
        ),
        (
            "born within first year".to_owned(),
            1.0 - pred.bucket_probability(BirthBucket::AfterM12),
        ),
        (
            "not born till after M12".to_owned(),
            pred.bucket_probability(BirthBucket::AfterM12),
        ),
    ];
    Stats62 { rows, born }
}

impl Stats62 {
    /// Renders the rigidity table.
    pub fn render(&self) -> String {
        let header = vec![
            cell("birth bucket"),
            cell("n"),
            cell("P(sharp, focused evolution)"),
            cell("paper"),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(l, n, p, paper)| vec![cell(l), cell(n), pct(*p), pct(*paper)])
            .collect();
        let mut out = format!(
            "§6.2 — rigidity given the point of schema birth\n\n{}",
            text_table(&header, &rows)
        );
        out.push_str("\nwhen are schemata born (paper: 34% / 60% / 68% / 31%):\n");
        for (l, p) in &self.born {
            out.push_str(&format!("  {l}: {}\n", pct(*p)));
        }
        out
    }
}

// ----------------------------------------------------------------- §6.3

/// §6.3 — the mixture of change types per pattern.
#[derive(Clone, Debug, Serialize)]
pub struct Stats63 {
    /// Per pattern: expansion total, maintenance total, expansion share,
    /// and the per-kind breakdown in [`ChangeKind::all`] order.
    pub rows: Vec<Stats63Row>,
}

/// One §6.3 row.
#[derive(Clone, Debug, Serialize)]
pub struct Stats63Row {
    /// The pattern.
    pub pattern: Pattern,
    /// Total expansion changes over all members.
    pub expansion: usize,
    /// Total maintenance changes over all members.
    pub maintenance: usize,
    /// Expansion share of all change.
    pub expansion_share: f64,
    /// Per-kind totals, [`ChangeKind::all`] order.
    pub kinds: [usize; 6],
}

/// Regenerates the §6.3 mixture analysis.
pub fn stats63(ctx: &ExpContext) -> Stats63 {
    let rows = Pattern::ALL
        .iter()
        .map(|&p| {
            let mut kinds = [0usize; 6];
            let mut expansion = 0;
            let mut maintenance = 0;
            for m in ctx.corpus.of_pattern(p) {
                let k = m.history.kind_totals();
                for i in 0..6 {
                    kinds[i] += k[i];
                }
                expansion += m.history.expansion_total();
                maintenance += m.history.maintenance_total();
            }
            let total = expansion + maintenance;
            Stats63Row {
                pattern: p,
                expansion,
                maintenance,
                expansion_share: if total == 0 {
                    0.0
                } else {
                    expansion as f64 / total as f64
                },
                kinds,
            }
        })
        .collect();
    Stats63 { rows }
}

impl Stats63 {
    /// Renders the mixture table.
    pub fn render(&self) -> String {
        let mut header = vec![
            cell("Pattern"),
            cell("expansion"),
            cell("maintenance"),
            cell("exp share"),
        ];
        header.extend(ChangeKind::all().iter().map(|k| cell(k.label())));
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut v = vec![
                    cell(r.pattern.name()),
                    cell(r.expansion),
                    cell(r.maintenance),
                    pct(r.expansion_share),
                ];
                v.extend(r.kinds.iter().map(cell));
                v
            })
            .collect();
        format!(
            "§6.3 — mixture of change types per pattern (expansion-biased, table-granular)\n\n{}",
            text_table(&header, &rows)
        )
    }
}

/// §6.2 and Fig. 7 use family masses too; expose the helper for tests.
pub fn family_mass(ctx: &ExpContext, family: Family) -> usize {
    ctx.corpus
        .projects()
        .iter()
        .filter(|p| p.assigned.family() == family)
        .count()
}
