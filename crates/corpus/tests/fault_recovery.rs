//! Fault-injection recovery: the corpus layer under an installed
//! `schemachron-fault` plan must heal transient faults deterministically,
//! quarantine poisoned stages, and never let an interrupted write produce
//! a directory that loads as a complete project.
//!
//! Fault state is process-global, so every test here holds [`GUARD`].

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use schemachron_corpus::io::write_corpus_dir;
use schemachron_corpus::pipeline::{clear_stage_cache, stage_stats};
use schemachron_corpus::{
    load_project_dir, par_map_isolated, verify_project_dir, Card, Corpus, LoadError,
};
use schemachron_fault as fault;
use schemachron_history::IngestMode;

static GUARD: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Uninstalls the plan and resets epoch/caches, also on panic unwind.
struct Cleanup;
impl Drop for Cleanup {
    fn drop(&mut self) {
        fault::clear();
        fault::set_epoch(0);
        clear_stage_cache();
    }
}

fn small_cards(n: usize) -> Vec<Card> {
    let mut cards = schemachron_corpus::cards::all_cards();
    cards.truncate(n);
    cards
}

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "schemachron-fault-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn transient_worker_faults_heal_identically_at_any_jobs() {
    let _g = exclusive();
    let _c = Cleanup;
    fault::set_epoch(0);
    fault::install(
        fault::FaultPlan::new(13, 0.2).with_sites([fault::site::PAR_MAP_WORKER.to_owned()]),
    );
    let items: Vec<u64> = (0..2048).collect();
    // 2048 items ≥ jobs*128, so jobs=8 genuinely runs the threaded pool.
    let runs: Vec<(Vec<Option<u64>>, Vec<String>)> = [1, 8, 1, 8]
        .iter()
        .map(|&jobs| {
            let outcome = par_map_isolated(items.clone(), jobs, |i| i * 3 + 1);
            let failures: Vec<String> = outcome.failures.iter().map(ToString::to_string).collect();
            (outcome.results, failures)
        })
        .collect();
    assert_eq!(runs[0], runs[1], "jobs 1 vs 8 must agree");
    assert_eq!(runs[0], runs[2], "reruns must agree");
    assert_eq!(runs[1], runs[3], "reruns must agree");
    // Rate 0.2 with 3 attempts: most items heal, the healed values are real.
    let healed = runs[0].0.iter().flatten().count();
    assert!(healed > 1900, "rate 0.2 should mostly heal, got {healed}/2048");
    for (i, v) in runs[0].0.iter().enumerate() {
        if let Some(v) = v {
            assert_eq!(*v, i as u64 * 3 + 1);
        }
    }
}

#[test]
fn rate_zero_plan_changes_nothing() {
    let _g = exclusive();
    let _c = Cleanup;
    fault::set_epoch(0);
    fault::install(fault::FaultPlan::new(5, 0.0));
    clear_stage_cache();
    let with_plan = Corpus::try_from_cards(small_cards(6), 42, 2).expect("rate 0 cannot fail");
    fault::clear();
    clear_stage_cache();
    let without = Corpus::try_from_cards(small_cards(6), 42, 2).expect("fault-free build");
    for (a, b) in with_plan.projects().iter().zip(without.projects()) {
        assert_eq!(a.card.name, b.card.name);
        assert_eq!(a.assigned, b.assigned);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.labels, b.labels);
    }
}

#[test]
fn stage_faults_yield_typed_errors_then_clean_rebuild_matches() {
    let _g = exclusive();
    let _c = Cleanup;
    fault::set_epoch(0);
    fault::install(
        fault::FaultPlan::new(3, 1.0)
            .with_sites([fault::site::PIPELINE_STAGE.to_owned()])
            .with_kinds([fault::FaultKind::WorkerPanic]),
    );
    clear_stage_cache();
    let failures = Corpus::try_from_cards(small_cards(4), 42, 1)
        .expect_err("rate 1.0 stage panics must fail every item");
    assert_eq!(failures.0.len(), 4, "{failures}");
    for f in &failures.0 {
        assert!(
            f.message.contains("schemachron-fault: injected"),
            "typed failure must carry the injected payload: {f}"
        );
    }
    // The failed stages never published into the cache...
    let quarantined: u64 = stage_stats().iter().map(|s| s.quarantined).sum();
    assert!(quarantined > 0, "quarantine counter must have fired");
    // ...so a fault-free rebuild on the same (possibly warm) cache is clean.
    fault::clear();
    let rebuilt = Corpus::try_from_cards(small_cards(4), 42, 1).expect("clean rebuild");
    clear_stage_cache();
    let reference = Corpus::try_from_cards(small_cards(4), 42, 1).expect("cold reference");
    for (a, b) in rebuilt.projects().iter().zip(reference.projects()) {
        assert_eq!(a.metrics, b.metrics, "{}", a.card.name);
        assert_eq!(a.labels, b.labels, "{}", a.card.name);
    }
}

#[test]
fn quarantine_under_sharded_cache_keeps_placement_and_determinism() {
    use schemachron_corpus::pipeline::{
        shard_of_key, stage_cache_shard_count, stage_cache_shard_entries,
    };

    let _g = exclusive();
    let _c = Cleanup;
    fault::set_epoch(0);
    // Partial-rate stage panics across a 4-worker pool: some stage runs
    // quarantine and retry, the rest publish into their key-selected
    // shards concurrently.
    fault::install(
        fault::FaultPlan::new(7, 0.3)
            .with_sites([fault::site::PIPELINE_STAGE.to_owned()])
            .with_kinds([fault::FaultKind::WorkerPanic]),
    );
    clear_stage_cache();
    let chaotic = Corpus::try_from_cards(small_cards(8), 42, 4);
    let quarantined: u64 = stage_stats().iter().map(|s| s.quarantined).sum();
    assert!(quarantined > 0, "rate 0.3 must trip the quarantine counter");

    // PR-5 invariant, now per-shard: a quarantined stage never publishes,
    // and whatever *did* publish sits exactly in the shard its key selects.
    let count = stage_cache_shard_count();
    assert!(count.is_power_of_two());
    let entries = stage_cache_shard_entries();
    assert!(!entries.is_empty(), "healed stages must have published");
    for (stage, key, shard) in entries {
        assert_eq!(
            shard,
            shard_of_key(key, count),
            "`{stage}` artifact {key:016x} landed outside its home shard"
        );
    }

    // Chaos healed (or failed) deterministically: the same plan and seed
    // on a cold cache at jobs=1 reaches the same outcome.
    clear_stage_cache();
    let serial = Corpus::try_from_cards(small_cards(8), 42, 1);
    match (&chaotic, &serial) {
        (Ok(a), Ok(b)) => {
            for (x, y) in a.projects().iter().zip(b.projects()) {
                assert_eq!(x.metrics, y.metrics, "{}", x.card.name);
                assert_eq!(x.labels, y.labels, "{}", x.card.name);
            }
        }
        (Err(a), Err(b)) => {
            let names = |f: &schemachron_corpus::WorkerFailures| {
                f.0.iter().map(|x| x.index).collect::<Vec<_>>()
            };
            assert_eq!(names(a), names(b), "failed items must agree across jobs");
        }
        (a, b) => panic!(
            "jobs=4 and jobs=1 disagree on success: {:?} vs {:?}",
            a.is_ok(),
            b.is_ok()
        ),
    }
}

#[test]
fn interrupted_writes_never_leave_an_acceptable_directory() {
    let _g = exclusive();
    let _c = Cleanup;
    clear_stage_cache();
    let corpus = Corpus::try_from_cards(small_cards(3), 42, 1).expect("fault-free build");
    let out = tmp("partial");

    // Every write faults: partial tmp files, then the error surfaces.
    fault::set_epoch(0);
    fault::install(
        fault::FaultPlan::new(21, 1.0)
            .with_sites([fault::site::IO_WRITE.to_owned()])
            .with_slow(Duration::from_millis(1)),
    );
    let err = write_corpus_dir(&corpus, &out).expect_err("rate 1.0 writes must fail");
    assert!(
        err.to_string().contains("schemachron-fault:"),
        "the failure must be the injected one: {err}"
    );
    // Whatever landed on disk is either a complete, verifying project or
    // gets rejected with the typed corruption error — nothing in between.
    for p in corpus.projects() {
        let final_dir = out.join(&p.card.name);
        if final_dir.exists() {
            verify_project_dir(&final_dir).expect("a committed dir must verify");
            load_project_dir(&final_dir, IngestMode::Migration).expect("and load");
        }
        let staging = out.join(format!("{}.partial", p.card.name));
        if staging.exists() {
            match load_project_dir(&staging, IngestMode::Migration) {
                Err(LoadError::Corrupt(_)) => {}
                other => panic!("staging dir must be rejected as corrupt, got {other:?}"),
            }
        }
    }

    // Resume: bump the epoch, lift the faults, and the same call converges.
    fault::clear();
    fault::set_epoch(1);
    write_corpus_dir(&corpus, &out).expect("fault-free resume");
    for p in corpus.projects() {
        let dir = out.join(&p.card.name);
        verify_project_dir(&dir).expect("resumed dir verifies");
        let loaded = load_project_dir(&dir, IngestMode::Migration).expect("resumed dir loads");
        assert_eq!(loaded.name(), p.card.name);
    }
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn tampering_after_a_clean_write_is_caught_and_repaired() {
    let _g = exclusive();
    let _c = Cleanup;
    clear_stage_cache();
    let corpus = Corpus::try_from_cards(small_cards(2), 42, 1).expect("fault-free build");
    let out = tmp("tamper");
    write_corpus_dir(&corpus, &out).expect("clean write");

    let victim = out.join(&corpus.projects()[0].card.name);
    let script = std::fs::read_dir(&victim)
        .expect("read project dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "sql"))
        .expect("a .sql script");
    std::fs::write(&script, "-- bitrot --\n").expect("tamper");

    match load_project_dir(&victim, IngestMode::Migration) {
        Err(LoadError::Corrupt(c)) => {
            assert!(c.detail.contains("checksum mismatch"), "{}", c.detail)
        }
        other => panic!("tampered dir must be CorruptCorpus, got {other:?}"),
    }

    // Re-running the writer repairs in place (idempotent fast path misses,
    // the stale dir is replaced atomically).
    write_corpus_dir(&corpus, &out).expect("repair write");
    verify_project_dir(&victim).expect("repaired dir verifies");
    load_project_dir(&victim, IngestMode::Migration).expect("repaired dir loads");
    let _ = std::fs::remove_dir_all(&out);
}
