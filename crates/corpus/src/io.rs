//! On-disk forms of the corpus: per-project SQL history directories and a
//! metrics CSV — the shapes a real schema-history miner would work with.
//!
//! # Crash safety
//!
//! A project directory is materialized **atomically**: every file is first
//! written into a `<name>.partial` staging directory (each file itself via
//! temp-file + rename), a `MANIFEST` of FNV-1a checksums is written and
//! fsynced last, and only then is the staging directory renamed into place.
//! A crash — or an injected fault — at any point leaves either the previous
//! complete directory, a `.partial` directory that [`load_project_dir`]
//! refuses, or nothing; never a half-written directory that loads as
//! complete. Re-running [`write_corpus_dir`] is idempotent: projects whose
//! `MANIFEST` already verifies are skipped, everything else (including
//! stale `.partial` leftovers) is rebuilt from scratch.
//!
//! [`load_project_dir`] verifies the `MANIFEST` when one is present and
//! reports disagreement as a typed [`CorruptCorpus`] error so callers can
//! distinguish "resume by rewriting this project" from a plain I/O failure.
//! Hand-assembled directories without a `MANIFEST` still load (the lint
//! rule `F001` flags checksum disagreement in directories that have one).

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use schemachron_fault as fault;
use schemachron_hash::fnv1a_once;
use schemachron_history::{Date, IngestMode, ProjectHistory, ProjectHistoryBuilder};

use crate::corpus::Corpus;
use crate::materialize::{materialize, MaterializedProject};

/// File name of the per-project checksum manifest.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// First line of a v1 manifest.
const MANIFEST_HEADER: &str = "# schemachron corpus manifest v1";

/// Suffix of the staging directory a project is assembled in before the
/// atomic rename into place. [`load_project_dir`] rejects directories with
/// this suffix: their contents are by definition incomplete.
pub const PARTIAL_SUFFIX: &str = ".partial";

/// A corpus directory that exists but cannot be trusted: its `MANIFEST`
/// disagrees with the on-disk files, is unparsable, or the directory is a
/// leftover `.partial` staging area.
#[derive(Debug)]
pub struct CorruptCorpus {
    /// The offending project directory.
    pub dir: PathBuf,
    /// What exactly disagreed.
    pub detail: String,
}

impl std::fmt::Display for CorruptCorpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrupt corpus directory {}: {}",
            self.dir.display(),
            self.detail
        )
    }
}

impl std::error::Error for CorruptCorpus {}

/// Typed failure of [`load_project_dir`]: either a plain I/O error or a
/// directory whose contents fail integrity verification. Only the latter
/// means "rewrite this project to recover".
#[derive(Debug)]
pub enum LoadError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The directory exists but fails integrity verification.
    Corrupt(CorruptCorpus),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => e.fmt(f),
            LoadError::Corrupt(c) => c.fmt(f),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Corrupt(c) => Some(c),
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn corrupt(dir: &Path, detail: impl Into<String>) -> LoadError {
    LoadError::Corrupt(CorruptCorpus {
        dir: dir.to_path_buf(),
        detail: detail.into(),
    })
}

/// The exact file set of one materialized project, in manifest order:
/// `(file name, bytes)` for every dated script plus `source.csv`.
fn project_files(mat: &MaterializedProject) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = mat
        .ddl_commits
        .iter()
        .enumerate()
        .map(|(i, (date, sql))| (format!("{:04}_{date}.sql", i + 1), sql.clone().into_bytes()))
        .collect();
    let mut src = String::from("date,lines_changed\n");
    for (date, lines) in &mat.source_commits {
        src.push_str(&format!("{date},{lines:.0}\n"));
    }
    files.push(("source.csv".to_owned(), src.into_bytes()));
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

/// Renders the manifest body for a file set: a header line followed by
/// `"{checksum:016x}  {name}"` per file, sorted by name.
fn render_manifest(files: &[(String, Vec<u8>)]) -> String {
    let mut out = String::from(MANIFEST_HEADER);
    out.push('\n');
    for (name, bytes) in files {
        out.push_str(&format!("{:016x}  {name}\n", fnv1a_once(bytes)));
    }
    out
}

/// Parses the `MANIFEST` of `dir` if one exists: `Ok(None)` when absent,
/// `Ok(Some(name → checksum))` when readable, [`LoadError::Corrupt`] when
/// present but unparsable.
///
/// # Errors
/// I/O failure reading the file, or corrupt-manifest contents.
pub fn read_manifest(dir: &Path) -> Result<Option<BTreeMap<String, u64>>, LoadError> {
    let path = dir.join(MANIFEST_NAME);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(LoadError::Io(e)),
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(corrupt(dir, "MANIFEST has an unrecognized header"));
    }
    let mut entries = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (hash, name) = line
            .split_once("  ")
            .ok_or_else(|| corrupt(dir, format!("unparsable MANIFEST line: {line:?}")))?;
        let hash = u64::from_str_radix(hash, 16)
            .map_err(|_| corrupt(dir, format!("bad checksum in MANIFEST line: {line:?}")))?;
        if name.is_empty() || name.contains('/') || name.contains('\\') {
            return Err(corrupt(dir, format!("bad file name in MANIFEST: {name:?}")));
        }
        entries.insert(name.to_owned(), hash);
    }
    Ok(Some(entries))
}

/// Verifies the integrity of one project directory against its `MANIFEST`:
/// every listed file must exist with a matching checksum, and no unlisted
/// `.sql` or `source.csv` file may be present.
///
/// # Errors
/// [`LoadError::Corrupt`] on any disagreement (including a missing
/// `MANIFEST`); [`LoadError::Io`] on filesystem failure.
pub fn verify_project_dir(dir: &Path) -> Result<(), LoadError> {
    let Some(entries) = read_manifest(dir)? else {
        return Err(corrupt(dir, "missing MANIFEST"));
    };
    verify_against(dir, &entries)
}

/// The body of [`verify_project_dir`] for an already-parsed manifest.
fn verify_against(dir: &Path, entries: &BTreeMap<String, u64>) -> Result<(), LoadError> {
    for (name, want) in entries {
        let bytes = fs::read(dir.join(name)).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                corrupt(dir, format!("MANIFEST lists {name} but it is missing"))
            } else {
                LoadError::Io(e)
            }
        })?;
        let got = fnv1a_once(&bytes);
        if got != *want {
            return Err(corrupt(
                dir,
                format!("checksum mismatch for {name}: MANIFEST says {want:016x}, file is {got:016x}"),
            ));
        }
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let fname = entry.file_name().to_string_lossy().into_owned();
        let tracked = fname.ends_with(".sql") || fname == "source.csv";
        if tracked && !entries.contains_key(&fname) {
            return Err(corrupt(dir, format!("{fname} is on disk but not in MANIFEST")));
        }
    }
    Ok(())
}

/// Best-effort directory fsync (a no-op on platforms where directories
/// cannot be opened for sync).
fn fsync_dir(dir: &Path) {
    if let Ok(f) = fs::File::open(dir) {
        let _ = f.sync_all();
    }
}

/// Writes one file durably inside `dir`: bytes go to a hidden temp file
/// first and are renamed over `name`, so a crash mid-write never leaves a
/// half-written file under its final name. Fault-injection site
/// `io::write`, keyed `"{project}/{name}"`.
fn write_atomic(dir: &Path, project: &str, name: &str, bytes: &[u8], durable: bool) -> io::Result<()> {
    let key = format!("{project}/{name}");
    match fault::roll(
        fault::site::IO_WRITE,
        &key,
        &[fault::FaultKind::IoError, fault::FaultKind::PartialWrite],
    ) {
        Some(fault::FaultKind::PartialWrite) => {
            // Simulate the crash mid-write: half the bytes reach the temp
            // file, the rename never happens.
            let tmp = dir.join(format!(".{name}.tmp"));
            fs::write(&tmp, &bytes[..bytes.len() / 2])?;
            return Err(fault::injected_io_error(fault::site::IO_WRITE, &key));
        }
        Some(_) => return Err(fault::injected_io_error(fault::site::IO_WRITE, &key)),
        None => {}
    }
    let tmp = dir.join(format!(".{name}.tmp"));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        if durable {
            f.sync_all()?;
        }
    }
    fs::rename(&tmp, dir.join(name))?;
    Ok(())
}

/// Materializes one project into `out/<name>` atomically: files are staged
/// in `out/<name>.partial` (`MANIFEST` written and fsynced last) and the
/// staging directory is renamed into place in one step. Idempotent: if the
/// final directory already verifies against the expected manifest, nothing
/// is rewritten; a stale `.partial` from an earlier crash is discarded and
/// rebuilt.
pub fn write_project_dir(out: &Path, name: &str, mat: &MaterializedProject) -> io::Result<()> {
    let files = project_files(mat);
    let manifest = render_manifest(&files);
    let final_dir = out.join(name);

    // Idempotence fast path: an existing directory whose MANIFEST equals
    // what we are about to write, and whose files verify, needs no work.
    if fs::read_to_string(final_dir.join(MANIFEST_NAME)).is_ok_and(|existing| existing == manifest)
        && verify_project_dir(&final_dir).is_ok()
    {
        return Ok(());
    }

    let staging = out.join(format!("{name}{PARTIAL_SUFFIX}"));
    if staging.exists() {
        fs::remove_dir_all(&staging)?;
    }
    fs::create_dir_all(&staging)?;
    for (fname, bytes) in &files {
        write_atomic(&staging, name, fname, bytes, false)?;
    }
    // The manifest is the commit record: durable before the directory
    // itself is published.
    write_atomic(&staging, name, MANIFEST_NAME, manifest.as_bytes(), true)?;
    fsync_dir(&staging);

    if final_dir.exists() {
        fs::remove_dir_all(&final_dir)?;
    }
    fs::rename(&staging, &final_dir)?;
    fsync_dir(out);
    Ok(())
}

/// Writes every project of the corpus as a directory of dated `.sql`
/// migration scripts, a `source.csv` of source-code activity, and a
/// `MANIFEST` of checksums:
///
/// ```text
/// out/
///   flatliner-000/
///     0001_2013-04-10.sql
///     source.csv            # date,lines_changed
///     MANIFEST              # fnv1a checksums, written last
///   ...
/// ```
///
/// Each project directory appears atomically (see [`write_project_dir`]);
/// re-running after a crash resumes where the previous run stopped.
pub fn write_corpus_dir(corpus: &Corpus, out: &Path) -> io::Result<()> {
    fs::create_dir_all(out)?;
    for p in corpus.projects() {
        let mat = materialize(&p.card, corpus.seed());
        write_project_dir(out, &p.card.name, &mat)?;
    }
    Ok(())
}

/// Loads one project directory written by [`write_corpus_dir`] (or
/// hand-assembled in the same shape) back into a [`ProjectHistory`].
///
/// When the directory carries a `MANIFEST`, its checksums are verified
/// first and any disagreement is a typed [`LoadError::Corrupt`] — the
/// signal to re-materialize that project. Directories without one (the
/// pre-manifest layout, or hand-built fixtures) load unverified.
/// `.partial` staging directories are always rejected as corrupt.
///
/// `mode` selects migration vs snapshot interpretation of the `.sql` files.
///
/// # Errors
/// [`LoadError::Corrupt`] on integrity failure, [`LoadError::Io`] on
/// filesystem failure or undated `.sql` file names.
pub fn load_project_dir(dir: &Path, mode: IngestMode) -> Result<ProjectHistory, LoadError> {
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "project".to_owned());
    if name.ends_with(PARTIAL_SUFFIX) {
        return Err(corrupt(dir, "unfinished .partial staging directory"));
    }
    if let Some(entries) = read_manifest(dir)? {
        verify_against(dir, &entries)?;
    }
    let mut b = ProjectHistoryBuilder::new(name);

    let mut sql_files: Vec<_> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "sql"))
        .collect();
    sql_files.sort();
    for path in sql_files {
        let date = date_from_filename(&path).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("no date in file name: {}", path.display()),
            )
        })?;
        let sql = fs::read_to_string(&path)?;
        match mode {
            IngestMode::Migration => b.migration(date, sql),
            IngestMode::Snapshot => b.snapshot(date, sql),
        };
    }

    let src = dir.join("source.csv");
    if src.exists() {
        for line in fs::read_to_string(src)?.lines().skip(1) {
            let mut parts = line.splitn(2, ',');
            let (Some(d), Some(l)) = (parts.next(), parts.next()) else {
                continue;
            };
            if let (Ok(date), Ok(lines)) = (d.parse::<Date>(), l.trim().parse::<f64>()) {
                b.source_commit(date, lines);
            }
        }
    }
    Ok(b.build())
}

/// Extracts a date from file names like `0001_2013-04-10.sql` or
/// `2013-04-10.sql`.
pub fn date_from_filename(path: &Path) -> Option<Date> {
    let stem = path.file_stem()?.to_string_lossy();
    for part in stem.split(['_', ' ']) {
        if let Ok(d) = part.parse::<Date>() {
            return Some(d);
        }
    }
    None
}

/// Writes the measured per-project metrics as CSV (one row per project),
/// the tabular shape the paper's analyses start from.
pub fn write_metrics_csv(corpus: &Corpus, out: &Path) -> io::Result<()> {
    let mut f = fs::File::create(out)?;
    writeln!(
        f,
        "name,pattern,exception,pup_months,birth_month,birth_pct,birth_volume_pct,\
         topband_month,topband_pct,interval_birth_top_pct,interval_top_end_pct,\
         active_growth_months,total_activity,expansion,maintenance"
    )?;
    for p in corpus.projects() {
        let m = &p.metrics;
        writeln!(
            f,
            "{},{},{},{},{},{:.4},{:.4},{},{:.4},{:.4},{:.4},{},{},{},{}",
            p.card.name,
            p.assigned.name(),
            p.exception,
            m.pup_months,
            m.birth_index,
            m.birth_pct_pup,
            m.birth_volume_pct_total,
            m.topband_index,
            m.topband_pct_pup,
            m.interval_birth_to_top_pct,
            m.interval_top_to_end_pct,
            m.active_growth_months,
            m.total_activity,
            m.expansion_total,
            m.maintenance_total,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("schemachron-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_one_project_through_disk() {
        let corpus = Corpus::generate(42);
        let out = tmp_dir("roundtrip");
        // Keep the test quick: write just the first few projects.
        let small: Vec<_> = corpus.projects().iter().take(3).collect();
        for p in &small {
            let mat = materialize(&p.card, corpus.seed());
            let dir = out.join(&p.card.name);
            fs::create_dir_all(&dir).unwrap();
            for (i, (date, sql)) in mat.ddl_commits.iter().enumerate() {
                fs::write(dir.join(format!("{:04}_{date}.sql", i + 1)), sql).unwrap();
            }
            let mut src = fs::File::create(dir.join("source.csv")).unwrap();
            writeln!(src, "date,lines_changed").unwrap();
            for (date, lines) in &mat.source_commits {
                writeln!(src, "{date},{lines:.0}").unwrap();
            }
        }
        for p in &small {
            let loaded = load_project_dir(&out.join(&p.card.name), IngestMode::Migration).unwrap();
            assert_eq!(
                loaded.month_count(),
                p.history.month_count(),
                "{}",
                p.card.name
            );
            assert_eq!(loaded.schema_total(), p.history.schema_total());
            assert_eq!(loaded.schema_birth_index(), p.history.schema_birth_index());
        }
        let _ = fs::remove_dir_all(&out);
    }

    #[test]
    fn written_project_has_verifying_manifest_and_loads_identically() {
        let corpus = Corpus::generate(42);
        let out = tmp_dir("manifest");
        let p = &corpus.projects()[0];
        let mat = materialize(&p.card, corpus.seed());
        write_project_dir(&out, &p.card.name, &mat).unwrap();
        let dir = out.join(&p.card.name);
        assert!(dir.join(MANIFEST_NAME).exists());
        verify_project_dir(&dir).unwrap();
        let loaded = load_project_dir(&dir, IngestMode::Migration).unwrap();
        assert_eq!(loaded.month_count(), p.history.month_count());
        assert_eq!(loaded.schema_total(), p.history.schema_total());
        // No staging residue after a successful write.
        assert!(!out.join(format!("{}{PARTIAL_SUFFIX}", p.card.name)).exists());
        let _ = fs::remove_dir_all(&out);
    }

    #[test]
    fn rewrite_is_idempotent() {
        let corpus = Corpus::generate(42);
        let out = tmp_dir("idem");
        let p = &corpus.projects()[0];
        let mat = materialize(&p.card, corpus.seed());
        write_project_dir(&out, &p.card.name, &mat).unwrap();
        let manifest_path = out.join(&p.card.name).join(MANIFEST_NAME);
        let before = fs::read(&manifest_path).unwrap();
        write_project_dir(&out, &p.card.name, &mat).unwrap();
        assert_eq!(fs::read(&manifest_path).unwrap(), before);
        let _ = fs::remove_dir_all(&out);
    }

    #[test]
    fn tampered_file_is_detected_and_rewrite_repairs() {
        let corpus = Corpus::generate(42);
        let out = tmp_dir("tamper");
        let p = &corpus.projects()[0];
        let mat = materialize(&p.card, corpus.seed());
        write_project_dir(&out, &p.card.name, &mat).unwrap();
        let dir = out.join(&p.card.name);
        fs::write(dir.join("source.csv"), "date,lines_changed\n").unwrap();
        let err = load_project_dir(&dir, IngestMode::Migration).unwrap_err();
        assert!(
            matches!(err, LoadError::Corrupt(_)),
            "want Corrupt, got {err}"
        );
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // Resume: rewriting the project repairs it.
        write_project_dir(&out, &p.card.name, &mat).unwrap();
        load_project_dir(&dir, IngestMode::Migration).unwrap();
        let _ = fs::remove_dir_all(&out);
    }

    #[test]
    fn partial_staging_dir_is_rejected() {
        let out = tmp_dir("partial");
        let staging = out.join(format!("proj{PARTIAL_SUFFIX}"));
        fs::create_dir_all(&staging).unwrap();
        fs::write(staging.join("0001_2020-01-10.sql"), "CREATE TABLE t (a INT);").unwrap();
        let err = load_project_dir(&staging, IngestMode::Migration).unwrap_err();
        assert!(matches!(err, LoadError::Corrupt(_)), "{err}");
        let _ = fs::remove_dir_all(&out);
    }

    #[test]
    fn unlisted_and_missing_files_are_corrupt() {
        let corpus = Corpus::generate(42);
        let out = tmp_dir("drift");
        let p = &corpus.projects()[0];
        let mat = materialize(&p.card, corpus.seed());
        write_project_dir(&out, &p.card.name, &mat).unwrap();
        let dir = out.join(&p.card.name);
        // An extra on-disk script the MANIFEST doesn't know about.
        fs::write(dir.join("9999_2030-01-01.sql"), "CREATE TABLE x (a INT);").unwrap();
        let err = verify_project_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("not in MANIFEST"), "{err}");
        fs::remove_file(dir.join("9999_2030-01-01.sql")).unwrap();
        // A listed file gone missing.
        fs::remove_file(dir.join("source.csv")).unwrap();
        let err = verify_project_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        let _ = fs::remove_dir_all(&out);
    }

    #[test]
    fn manifestless_legacy_dir_still_loads() {
        let out = tmp_dir("legacy");
        fs::write(out.join("0001_2020-01-10.sql"), "CREATE TABLE t (a INT);").unwrap();
        let p = load_project_dir(&out, IngestMode::Migration).unwrap();
        assert_eq!(p.schema_total(), 1.0);
        let _ = fs::remove_dir_all(&out);
    }

    #[test]
    fn date_extraction_variants() {
        assert_eq!(
            date_from_filename(Path::new("0001_2013-04-10.sql")),
            Some(Date::new(2013, 4, 10))
        );
        assert_eq!(
            date_from_filename(Path::new("2020-01-05.sql")),
            Some(Date::new(2020, 1, 5))
        );
        assert_eq!(date_from_filename(Path::new("schema.sql")), None);
    }

    #[test]
    fn metrics_csv_has_one_row_per_project() {
        let corpus = Corpus::generate(42);
        let out = tmp_dir("csv").join("metrics.csv");
        write_metrics_csv(&corpus, &out).unwrap();
        let text = fs::read_to_string(&out).unwrap();
        assert_eq!(text.lines().count(), 152); // header + 151
        let _ = fs::remove_dir_all(out.parent().unwrap());
    }
}

#[cfg(test)]
mod fault_tolerance_tests {
    use super::*;
    use schemachron_history::IngestMode;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("schemachron-fault-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn corrupted_sql_file_degrades_gracefully() {
        let dir = tmp("corrupt");
        fs::write(dir.join("0001_2020-01-10.sql"), "CREATE TABLE ok (a INT);").unwrap();
        fs::write(
            dir.join("0002_2020-03-10.sql"),
            ");;CREATE TABLEE broken ((((' unterminated",
        )
        .unwrap();
        fs::write(
            dir.join("0003_2020-05-10.sql"),
            "ALTER TABLE ok ADD COLUMN b INT;",
        )
        .unwrap();
        let p = load_project_dir(&dir, IngestMode::Migration).unwrap();
        // The corrupted middle version parses to nothing; the history survives.
        assert_eq!(p.schema_total(), 2.0);
        assert_eq!(
            p.schema_history()
                .unwrap()
                .last_schema()
                .unwrap()
                .table("ok")
                .unwrap()
                .attribute_count(),
            2
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn undated_sql_file_is_an_error() {
        let dir = tmp("undated");
        fs::write(dir.join("schema.sql"), "CREATE TABLE t (a INT);").unwrap();
        let err = load_project_dir(&dir, IngestMode::Migration).unwrap_err();
        assert!(err.to_string().contains("no date"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_source_csv_lines_are_skipped() {
        let dir = tmp("badcsv");
        fs::write(dir.join("0001_2020-01-10.sql"), "CREATE TABLE t (a INT);").unwrap();
        let mut f = fs::File::create(dir.join("source.csv")).unwrap();
        writeln!(f, "date,lines_changed").unwrap();
        writeln!(f, "2020-01-05,100").unwrap();
        writeln!(f, "not-a-date,50").unwrap();
        writeln!(f, "2020-06-05,not-a-number").unwrap();
        writeln!(f, "garbage line without comma").unwrap();
        writeln!(f, "2020-12-05,25").unwrap();
        drop(f);
        let p = load_project_dir(&dir, IngestMode::Migration).unwrap();
        assert_eq!(p.source_heartbeat().total(), 125.0);
        assert_eq!(p.month_count(), 12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_sql_files_are_ignored() {
        let dir = tmp("mixed");
        fs::write(dir.join("0001_2020-01-10.sql"), "CREATE TABLE t (a INT);").unwrap();
        fs::write(dir.join("README.md"), "# notes").unwrap();
        fs::write(dir.join("data.csv"), "x,y").unwrap();
        let p = load_project_dir(&dir, IngestMode::Migration).unwrap();
        assert_eq!(p.schema_total(), 1.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        assert!(load_project_dir(
            std::path::Path::new("/definitely/not/here"),
            IngestMode::Migration
        )
        .is_err());
    }

    #[test]
    fn unparsable_manifest_is_corrupt() {
        let dir = tmp("badmanifest");
        fs::write(dir.join("0001_2020-01-10.sql"), "CREATE TABLE t (a INT);").unwrap();
        fs::write(dir.join(MANIFEST_NAME), "totally not a manifest\n").unwrap();
        let err = load_project_dir(&dir, IngestMode::Migration).unwrap_err();
        assert!(matches!(err, LoadError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("header"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
