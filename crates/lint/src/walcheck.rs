//! On-disk WAL integrity pass (`H007`): re-verifies a streaming project's
//! write-ahead commit log from first principles.
//!
//! The streaming store (`schemachron_stream::wal`) keeps one directory of
//! append-only segment files per project, every record carrying a chained
//! FNV-1a checksum over the entire history before it. This pass restates
//! that format — the header grammar, the record framing and the checksum
//! chain — **without calling the stream crate's own decoder**, so drift
//! between the writer and this auditor is caught rather than silently
//! tolerated (registry tests pin the restated constants to the engine's).
//!
//! Findings, all `H007`:
//!
//! * a segment header that does not parse or does not continue the chain
//!   the previous segment left off at;
//! * a record whose chained checksum fails where valid records follow
//!   (a mid-log hole — replay would refuse this log);
//! * a torn tail: an incomplete or checksum-failing suffix of the final
//!   segment (replay recovers it by truncation, but a log at rest should
//!   not carry one);
//! * a sequence number that repeats or skips;
//! * a feed cursor that fails to advance.
//!
//! Directories without any `NNNNNN.wal` file produce no findings: there is
//! no log to disagree with.

use std::path::{Path, PathBuf};

use schemachron_hash::{fnv1a, FNV_OFFSET};

use crate::diag::{Diagnostic, Report};

/// The segment header prefix, restated from
/// [`schemachron_stream::SEGMENT_HEADER_PREFIX`] (a registry test pins the
/// two together).
const WAL_HEADER_PREFIX: &str = "# schemachron wal segment v1";

/// The chain seed — the `prev` checksum of the very first record —
/// restated from [`schemachron_stream::CHAIN_SEED`].
const WAL_CHAIN_SEED: u64 = FNV_OFFSET;

/// Independent restatement of the record checksum chain:
/// `fnv1a` folded over the previous checksum, the sequence number, the
/// feed cursor, the date and the payload bytes, in that order.
fn rederive_record_crc(prev: u64, seq: u64, cursor: u64, date: &str, payload: &[u8]) -> u64 {
    let h = fnv1a(FNV_OFFSET, &prev.to_le_bytes());
    let h = fnv1a(h, &seq.to_le_bytes());
    let h = fnv1a(h, &cursor.to_le_bytes());
    let h = fnv1a(h, date.as_bytes());
    fnv1a(h, payload)
}

/// Parses `key=value` out of a whitespace-tokenized header line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('='))
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

fn field_hex(line: &str, key: &str) -> Option<u64> {
    u64::from_str_radix(field(line, key)?, 16).ok()
}

/// Running chain state across segments of one project's WAL.
struct Chain {
    crc: u64,
    last_seq: u64,
    last_cursor: u64,
}

/// Audits every `NNNNNN.wal` segment under `dir` (the layout the streaming
/// store keeps per project), pushing one `H007` finding per violation.
/// Silent when the directory holds no segments.
///
/// # Errors
/// Returns the underlying I/O error when the directory or a segment cannot
/// be read; integrity disagreements are findings, not errors.
pub fn lint_wal_dir(dir: &Path, report: &mut Report) -> std::io::Result<()> {
    let project = dir
        .file_name()
        .map_or_else(|| "(project)".to_owned(), |n| n.to_string_lossy().into_owned());
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
        if let Some(idx) = name
            .strip_suffix(".wal")
            .and_then(|stem| stem.parse::<u64>().ok())
        {
            segments.push((idx, path));
        }
    }
    if segments.is_empty() {
        return Ok(());
    }
    segments.sort();

    let mut chain = Chain {
        crc: WAL_CHAIN_SEED,
        last_seq: 0,
        last_cursor: 0,
    };
    let last_index = segments.len() - 1;
    for (i, (idx, path)) in segments.iter().enumerate() {
        let bytes = std::fs::read(path)?;
        let name = format!("{idx:06}.wal");
        if !audit_segment(&project, &name, &bytes, i == last_index, &mut chain, report) {
            // The chain is broken; every later record would fail its
            // `prev` link too, so stop instead of cascading one real
            // violation into dozens of derived ones.
            break;
        }
    }
    report.sort();
    Ok(())
}

/// Audits one segment. Returns `false` when the chain is too damaged to
/// keep walking (the caller stops to avoid cascading findings).
fn audit_segment(
    project: &str,
    name: &str,
    bytes: &[u8],
    is_last: bool,
    chain: &mut Chain,
    report: &mut Report,
) -> bool {
    let mut push = |message: String| {
        report.push(Diagnostic::new("H007", project, message));
    };

    // Header line.
    let Some(header_end) = bytes.iter().position(|&b| b == b'\n').map(|nl| nl + 1) else {
        push(format!("{name}: segment header has no newline"));
        return false;
    };
    let Ok(header) = std::str::from_utf8(&bytes[..header_end - 1]) else {
        push(format!("{name}: segment header is not UTF-8"));
        return false;
    };
    if !header.starts_with(WAL_HEADER_PREFIX) {
        push(format!("{name}: unrecognized segment header `{header}`"));
        return false;
    }
    let (Some(base_seq), Some(base_crc)) =
        (field_u64(header, "base_seq"), field_hex(header, "base_crc"))
    else {
        push(format!("{name}: segment header is missing base_seq/base_crc"));
        return false;
    };
    if base_seq != chain.last_seq || base_crc != chain.crc {
        push(format!(
            "{name}: header continues from seq {base_seq} crc {base_crc:016x}, but the \
             restated chain is at seq {} crc {:016x}",
            chain.last_seq, chain.crc
        ));
        return false;
    }

    // Records.
    let mut at = header_end;
    while at < bytes.len() {
        let rest = &bytes[at..];
        let torn = |detail: &str| {
            if is_last {
                format!("{name}: torn tail: {detail} (replay would truncate it; the log was \
                         left mid-append)")
            } else {
                format!("{name}: {detail} (mid-log hole: valid segments follow)")
            }
        };
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            push(torn("record header has no newline"));
            return false;
        };
        let Ok(rec_header) = std::str::from_utf8(&rest[..nl]) else {
            push(torn("record header is not UTF-8"));
            return false;
        };
        if !rec_header.starts_with("rec v1 ") {
            push(torn(&format!("unrecognized record header `{rec_header}`")));
            return false;
        }
        let (Some(seq), Some(cursor), Some(date), Some(len), Some(prev), Some(crc)) = (
            field_u64(rec_header, "seq"),
            field_u64(rec_header, "cur"),
            field(rec_header, "date"),
            field_u64(rec_header, "len"),
            field_hex(rec_header, "prev"),
            field_hex(rec_header, "crc"),
        ) else {
            push(torn(&format!("record header is missing fields: `{rec_header}`")));
            return false;
        };
        let body_start = nl + 1;
        let body_end = body_start + len as usize;
        if rest.len() < body_end + 1 {
            push(torn(&format!("record seq={seq} payload is truncated")));
            return false;
        }
        let body = &rest[body_start..body_end];
        let restated = rederive_record_crc(chain.crc, seq, cursor, date, body);
        if prev != chain.crc || crc != restated {
            // A failing checksum in the very tail position of the final
            // segment is an unsynced crash leftover; anywhere else it is a
            // hole in the middle of an acknowledged history.
            let tail_position = is_last && at + body_end + 1 >= bytes.len();
            if tail_position {
                push(torn(&format!("record seq={seq} fails its chained checksum")));
            } else {
                push(format!(
                    "{name}: record seq={seq} fails its restated chained checksum \
                     (recorded {crc:016x}, restated {restated:016x}; mid-log, not a \
                     recoverable tail)"
                ));
            }
            return false;
        }
        // The checksum is valid, so the record was genuinely written this
        // way: sequence and cursor violations are writer bugs, not crashes.
        if seq <= chain.last_seq {
            push(format!(
                "{name}: record seq={seq} repeats or regresses (chain already at seq {})",
                chain.last_seq
            ));
        } else if seq != chain.last_seq + 1 {
            push(format!(
                "{name}: record seq={seq} skips ahead (chain expected seq {})",
                chain.last_seq + 1
            ));
        }
        if cursor <= chain.last_cursor {
            push(format!(
                "{name}: record seq={seq} cursor {cursor} does not advance past {}",
                chain.last_cursor
            ));
        }
        chain.crc = restated;
        chain.last_seq = seq;
        chain.last_cursor = cursor.max(chain.last_cursor);
        at += body_end + 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_stream::{record_crc, Wal, WalRecord};
    use std::fs;

    fn tmp(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("schemachron-walcheck-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(seq: u64, cursor: u64, sql: &str) -> WalRecord {
        WalRecord {
            seq,
            cursor,
            date: "2020-01-10".to_owned(),
            payload: sql.to_owned(),
        }
    }

    /// Encodes one record exactly as the writer frames it, so tests can
    /// append checksum-valid records that violate chain semantics.
    fn encode(prev: u64, seq: u64, cursor: u64, date: &str, payload: &str) -> Vec<u8> {
        let crc = record_crc(prev, seq, cursor, date, payload.as_bytes());
        let mut out = format!(
            "rec v1 seq={seq} cur={cursor} date={date} len={} prev={prev:016x} crc={crc:016x}\n",
            payload.len(),
        )
        .into_bytes();
        out.extend_from_slice(payload.as_bytes());
        out.push(b'\n');
        out
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn restated_wal_constants_match_the_engine() {
        assert_eq!(WAL_HEADER_PREFIX, schemachron_stream::SEGMENT_HEADER_PREFIX);
        assert_eq!(WAL_CHAIN_SEED, schemachron_stream::CHAIN_SEED);
        // And the full checksum chain, on arbitrary inputs.
        assert_eq!(
            rederive_record_crc(0x1234_5678_9abc_def0, 7, 9, "2021-05-10", b"DROP TABLE t;"),
            record_crc(0x1234_5678_9abc_def0, 7, 9, "2021-05-10", b"DROP TABLE t;")
        );
    }

    #[test]
    fn pristine_wal_audits_clean_and_wal_less_dir_is_silent() {
        let dir = tmp("clean");
        let mut report = Report::new();
        lint_wal_dir(&dir, &mut report).unwrap();
        assert!(report.diagnostics().is_empty(), "no segments, no findings");

        let mut wal = Wal::open(&dir, "p").unwrap();
        wal.append(rec(1, 1, "CREATE TABLE t (a INT);")).unwrap();
        wal.append(rec(2, 2, "ALTER TABLE t ADD COLUMN b INT;")).unwrap();
        drop(wal);
        lint_wal_dir(&dir, &mut report).unwrap();
        assert!(report.diagnostics().is_empty(), "{}", report.render_human());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_byte_is_h007_mid_log() {
        let dir = tmp("flip");
        let mut wal = Wal::open(&dir, "p").unwrap();
        wal.append(rec(1, 1, "CREATE TABLE t (a INT);")).unwrap();
        wal.append(rec(2, 2, "ALTER TABLE t ADD COLUMN b INT;")).unwrap();
        drop(wal);
        let seg = dir.join("000001.wal");
        let mut bytes = fs::read(&seg).unwrap();
        let pos = bytes
            .windows(6)
            .position(|w| w == b"CREATE")
            .expect("first payload present");
        bytes[pos] = b'X';
        fs::write(&seg, &bytes).unwrap();
        let mut report = Report::new();
        lint_wal_dir(&dir, &mut report).unwrap();
        assert_eq!(codes(&report), ["H007"]);
        assert!(
            report.render_human().contains("restated chained checksum"),
            "{}",
            report.render_human()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_h007_named_as_a_tail() {
        let dir = tmp("torn");
        let mut wal = Wal::open(&dir, "p").unwrap();
        wal.append(rec(1, 1, "CREATE TABLE t (a INT);")).unwrap();
        let crc = wal.chain_crc();
        drop(wal);
        let torn = encode(crc, 2, 2, "2020-02-10", "DROP TABLE t;");
        let seg = dir.join("000001.wal");
        let mut bytes = fs::read(&seg).unwrap();
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        fs::write(&seg, &bytes).unwrap();
        let mut report = Report::new();
        lint_wal_dir(&dir, &mut report).unwrap();
        assert_eq!(codes(&report), ["H007"]);
        assert!(
            report.render_human().contains("torn tail"),
            "{}",
            report.render_human()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_seq_and_backward_cursor_are_h007() {
        let dir = tmp("dupseq");
        let mut wal = Wal::open(&dir, "p").unwrap();
        wal.append(rec(1, 5, "CREATE TABLE t (a INT);")).unwrap();
        let crc = wal.chain_crc();
        drop(wal);
        // A checksum-valid record that repeats seq 1 *and* steps its cursor
        // backward: broken writer logic, not a crash.
        let bogus = encode(crc, 1, 3, "2020-02-10", "DROP TABLE t;");
        let seg = dir.join("000001.wal");
        let mut bytes = fs::read(&seg).unwrap();
        bytes.extend_from_slice(&bogus);
        fs::write(&seg, &bytes).unwrap();
        let mut report = Report::new();
        lint_wal_dir(&dir, &mut report).unwrap();
        assert_eq!(codes(&report), ["H007", "H007"]);
        let text = report.render_human();
        assert!(text.contains("repeats or regresses"), "{text}");
        assert!(text.contains("does not advance"), "{text}");
        let _ = fs::remove_dir_all(&dir);
    }
}
