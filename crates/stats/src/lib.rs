#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-stats
//!
//! The statistics substrate of the reproduction — every statistical routine
//! the EDBT 2025 study leans on, implemented from scratch:
//!
//! * [`descriptive`] — means, medians, quantiles, standard deviation;
//! * [`rank`] — ranking with ties, Pearson and **Spearman** correlation
//!   (Fig. 2 of the paper is a Spearman correlation graph);
//! * [`shapiro`] — the **Shapiro–Wilk** normality test (Royston's AS R94),
//!   used in §3.4 to verify the non-normal character of the metrics;
//! * [`histogram`] — fixed-bucket histograms with pinned special values
//!   (the paper quantizes metrics into 10 buckets "with special care for
//!   special values like 0 and 1");
//! * [`tree`] — a CART **decision tree** over ordinal-coded categorical
//!   features (Fig. 5 classifies the patterns with such a tree,
//!   misclassifying only 4 of 151 projects);
//! * [`mod@centroid`] — centroids and mean-distance-to-centroid of quantized
//!   time-series vectors (§5.2's pattern-cohesion check);
//! * [`mannwhitney`] — the Mann–Whitney U test, backing the §6.1 claim that
//!   Smoking Funnel / Regularly Curated activity separates from the rest.
//!
//! The crate is dependency-free and fully deterministic.

pub mod centroid;
pub mod descriptive;
pub mod histogram;
pub mod mannwhitney;
pub mod rank;
pub mod shapiro;
pub mod tree;

pub use centroid::{centroid, euclidean, mean_distance_to_centroid};
pub use descriptive::{mean, median, quantile, std_dev};
pub use histogram::PinnedHistogram;
pub use mannwhitney::{mann_whitney_u, MannWhitneyResult};
pub use rank::{pearson, ranks, spearman, spearman_matrix};
pub use shapiro::{shapiro_wilk, ShapiroResult};
pub use tree::{DecisionTree, TreeConfig};
