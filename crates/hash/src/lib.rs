#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-hash
//!
//! The workspace's one FNV-1a implementation.
//!
//! Content-hash keys fingerprint every artifact of the staged ingestion
//! pipeline (`schemachron-corpus`), and the static cache auditor
//! (`schemachron-lint`) re-derives those same keys independently to detect
//! drift. Both sides therefore need byte-identical hashing — this crate is
//! the single definition they share, extracted from the two copies that
//! used to live in `corpus::pipeline` and `corpus::materialize`.
//!
//! The chaining convention: seed the first call with [`FNV_OFFSET`], then
//! feed each byte slice through [`fnv1a`] in order. Chaining is equivalent
//! to hashing the concatenation, so `fnv1a(fnv1a(FNV_OFFSET, a), b) ==
//! fnv1a(FNV_OFFSET, a ++ b)` — the property the pipeline's key derivation
//! relies on and the tests below pin down.

/// The 64-bit FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The 64-bit FNV prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, continuing from `h` (seed the first call with
/// [`FNV_OFFSET`]). Stable across runs and platforms.
#[must_use]
pub fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a of a single byte slice from the offset basis — the common
/// "hash one string" case.
#[must_use]
pub fn fnv1a_once(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors (64-bit).
        assert_eq!(fnv1a_once(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_once(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_once(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn chaining_equals_concatenation() {
        // The property the pipeline's derive_key chaining relies on.
        let ab = fnv1a(fnv1a(FNV_OFFSET, b"stage-name"), b"\x01\x00\x00\x00");
        let whole = fnv1a_once(b"stage-name\x01\x00\x00\x00");
        assert_eq!(ab, whole);
    }

    #[test]
    fn chaining_order_matters() {
        let ab = fnv1a(fnv1a(FNV_OFFSET, b"a"), b"b");
        let ba = fnv1a(fnv1a(FNV_OFFSET, b"b"), b"a");
        assert_ne!(ab, ba, "FNV-1a chaining is order-sensitive");
    }

    #[test]
    fn empty_slices_are_identity() {
        let h = fnv1a_once(b"seed");
        assert_eq!(fnv1a(h, b""), h);
    }
}
