//! Column-level lineage over a schema history.
//!
//! The abstract interpreter walks every version transition and threads each
//! column's identity through the changes that would otherwise sever it:
//! rename-shaped drop/add pairs, in-place type changes, and rebuild-shaped
//! table drop/create pairs (the same-name DROP + CREATE a dialect's rebuild
//! fallback emits). The result is one record per distinct column lifeline.

use schemachron_dialect::{diff_ops, DiffOp};
use schemachron_history::SchemaHistory;
use schemachron_model::Schema;

use crate::classify::rename_partner;

/// One column's lifeline through the history.
#[derive(Clone, Debug)]
pub struct ColumnRecord {
    /// Owning table (normalized name, the latest if the table was renamed).
    pub table: String,
    /// Latest normalized column name on the lifeline.
    pub column: String,
    /// Version index where the column first appeared.
    pub born: usize,
    /// Version index where the lifeline ended, `None` if it survives.
    pub died: Option<usize>,
    /// In-place type changes observed along the lifeline.
    pub type_changes: usize,
    /// Rename hops (each records the previous name).
    pub renamed_from: Vec<String>,
}

/// Aggregate lineage counts for one project.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineageSummary {
    /// Distinct column lifelines that ever existed.
    pub columns: usize,
    /// Rename hops threaded through drop/add pairs.
    pub renames: usize,
    /// In-place type changes across all lifelines.
    pub type_changes: usize,
    /// Lifelines still alive at the history's end.
    pub surviving: usize,
}

/// Tracks every column lifeline through `history`.
pub fn column_lineage(history: &SchemaHistory) -> (Vec<ColumnRecord>, LineageSummary) {
    let mut records: Vec<ColumnRecord> = Vec::new();
    // (table_norm, column_norm) -> index into `records` for live lifelines.
    let mut live: std::collections::BTreeMap<(String, String), usize> =
        std::collections::BTreeMap::new();
    let empty = Schema::default();
    let mut prev = &empty;
    for (version, v) in history.versions().iter().enumerate() {
        let ops = diff_ops(prev, &v.schema);
        step(&mut records, &mut live, prev, &ops, version);
        prev = &v.schema;
    }
    let summary = LineageSummary {
        columns: records.len(),
        renames: records.iter().map(|r| r.renamed_from.len()).sum(),
        type_changes: records.iter().map(|r| r.type_changes).sum(),
        surviving: records.iter().filter(|r| r.died.is_none()).count(),
    };
    (records, summary)
}

#[allow(clippy::too_many_lines)]
fn step(
    records: &mut Vec<ColumnRecord>,
    live: &mut std::collections::BTreeMap<(String, String), usize>,
    before: &Schema,
    ops: &[DiffOp],
    version: usize,
) {
    // Rebuild-shaped table moves: a DropTable paired with a CreateTable of
    // the same column set in the same batch keeps its lifelines alive.
    let rebuilt_into = |dropped: &schemachron_model::Name| -> Option<&schemachron_model::Table> {
        let old = before.table_of(dropped)?;
        ops.iter().find_map(|op| match op {
            DiffOp::CreateTable(t)
                if t.attribute_count() == old.attribute_count()
                    && old.attributes().iter().all(|a| {
                        t.attribute_of(&a.name)
                            .is_some_and(|b| b.data_type == a.data_type)
                    }) =>
            {
                Some(t)
            }
            _ => None,
        })
    };
    for op in ops {
        match op {
            DiffOp::CreateTable(t) => {
                let tkey = t.name.normalized();
                // Skip columns that arrive via a rebuild-shaped move; the
                // DropTable arm re-homes those lifelines instead.
                let is_rebuild_target = ops.iter().any(|o| {
                    matches!(o, DiffOp::DropTable(d) if rebuilt_into(d).is_some_and(|r| r.name == t.name))
                });
                if is_rebuild_target {
                    continue;
                }
                for a in t.attributes() {
                    let idx = records.len();
                    records.push(ColumnRecord {
                        table: tkey.clone(),
                        column: a.name.normalized(),
                        born: version,
                        died: None,
                        type_changes: 0,
                        renamed_from: Vec::new(),
                    });
                    live.insert((tkey.clone(), a.name.normalized()), idx);
                }
            }
            DiffOp::DropTable(name) => {
                let tkey = name.normalized();
                if let Some(new_table) = rebuilt_into(name) {
                    // Re-home every lifeline onto the rebuilt table.
                    let new_key = new_table.name.normalized();
                    let moved: Vec<((String, String), usize)> = live
                        .range((tkey.clone(), String::new())..)
                        .take_while(|((t, _), _)| *t == tkey)
                        .map(|(k, v)| (k.clone(), *v))
                        .collect();
                    for ((_, col), idx) in moved {
                        live.remove(&(tkey.clone(), col.clone()));
                        records[idx].table = new_key.clone();
                        live.insert((new_key.clone(), col), idx);
                    }
                } else {
                    let dead: Vec<(String, String)> = live
                        .range((tkey.clone(), String::new())..)
                        .take_while(|((t, _), _)| *t == tkey)
                        .map(|(k, _)| k.clone())
                        .collect();
                    for key in dead {
                        if let Some(idx) = live.remove(&key) {
                            records[idx].died = Some(version);
                        }
                    }
                }
            }
            DiffOp::AddColumn { table, attr } => {
                let tkey = table.normalized();
                // A rename partner's lifeline is threaded by the DropColumn
                // arm; only genuinely new columns are born here.
                let is_rename_target = ops.iter().any(|o| {
                    matches!(o, DiffOp::DropColumn { table: dt, column }
                        if dt == table
                            && before
                                .table_of(dt)
                                .and_then(|t| t.attribute_of(column))
                                .is_some_and(|dropped| {
                                    rename_partner(ops, dt, dropped, before)
                                        .is_some_and(|p| p.name == attr.name)
                                }))
                });
                if is_rename_target {
                    continue;
                }
                let idx = records.len();
                records.push(ColumnRecord {
                    table: tkey.clone(),
                    column: attr.name.normalized(),
                    born: version,
                    died: None,
                    type_changes: 0,
                    renamed_from: Vec::new(),
                });
                live.insert((tkey, attr.name.normalized()), idx);
            }
            DiffOp::DropColumn { table, column } => {
                let tkey = table.normalized();
                let key = (tkey.clone(), column.normalized());
                let partner = before
                    .table_of(table)
                    .and_then(|t| t.attribute_of(column))
                    .and_then(|dropped| rename_partner(ops, table, dropped, before));
                match (live.remove(&key), partner) {
                    (Some(idx), Some(new_attr)) => {
                        records[idx].renamed_from.push(column.normalized());
                        records[idx].column = new_attr.name.normalized();
                        live.insert((tkey, new_attr.name.normalized()), idx);
                    }
                    (Some(idx), None) => records[idx].died = Some(version),
                    (None, _) => {}
                }
            }
            DiffOp::AlterColumn { table, from, to } if from.data_type != to.data_type => {
                let key = (table.normalized(), to.name.normalized());
                if let Some(&idx) = live.get(&key) {
                    records[idx].type_changes += 1;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_history::{Date, IngestMode};

    fn history(scripts: &[(&str, &str)]) -> SchemaHistory {
        let entries: Vec<(Date, String)> = scripts
            .iter()
            .enumerate()
            .map(|(i, (_, sql))| {
                #[allow(clippy::cast_possible_truncation)]
                let day = (i + 1) as u8;
                (Date::new(2020, 1, day), (*sql).to_owned())
            })
            .collect();
        SchemaHistory::from_entries(IngestMode::Migration, entries)
    }

    #[test]
    fn births_deaths_and_survivors_are_counted() {
        let h = history(&[
            ("a", "CREATE TABLE t (a INT, b INT);"),
            ("b", "ALTER TABLE t DROP COLUMN b; CREATE TABLE u (x INT);"),
        ]);
        let (records, summary) = column_lineage(&h);
        assert_eq!(summary.columns, 3);
        assert_eq!(summary.surviving, 2);
        let b = records.iter().find(|r| r.column == "b").expect("b tracked");
        assert_eq!(b.died, Some(1));
    }

    #[test]
    fn rename_shaped_drop_add_threads_the_lifeline() {
        let h = history(&[
            ("a", "CREATE TABLE t (old_name VARCHAR(64));"),
            (
                "b",
                "ALTER TABLE t ADD COLUMN new_name VARCHAR(64);\n\
                 ALTER TABLE t DROP COLUMN old_name;",
            ),
        ]);
        let (records, summary) = column_lineage(&h);
        assert_eq!(summary.columns, 1, "{records:?}");
        assert_eq!(summary.renames, 1);
        assert_eq!(records[0].column, "new_name");
        assert_eq!(records[0].renamed_from, ["old_name"]);
        assert!(records[0].died.is_none());
    }

    #[test]
    fn type_changes_accumulate_on_the_lifeline() {
        let h = history(&[
            ("a", "CREATE TABLE t (c INT);"),
            ("b", "ALTER TABLE t MODIFY COLUMN c BIGINT;"),
            ("c", "ALTER TABLE t MODIFY COLUMN c VARCHAR(32);"),
        ]);
        let (records, summary) = column_lineage(&h);
        assert_eq!(summary.columns, 1);
        assert_eq!(summary.type_changes, 2);
        assert_eq!(records[0].type_changes, 2);
    }

    #[test]
    fn rebuild_shaped_drop_create_keeps_lifelines() {
        let h = history(&[
            ("a", "CREATE TABLE t (a INT, b VARCHAR(10));"),
            (
                "b",
                "DROP TABLE t;\nCREATE TABLE t2 (a INT, b VARCHAR(10));",
            ),
        ]);
        let (records, summary) = column_lineage(&h);
        assert_eq!(summary.columns, 2, "{records:?}");
        assert_eq!(summary.surviving, 2);
        assert!(records.iter().all(|r| r.table == "t2"));
    }
}
