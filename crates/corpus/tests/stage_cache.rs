//! Stage-cache behavior: cold builds miss every stage in pipeline order,
//! warm builds hit only the terminal artifacts, and mutating one card
//! invalidates exactly that project's chain. Also proves the incremental
//! rebuild is byte-identical to a from-scratch build at several worker
//! counts.
//!
//! The stage cache and its counters are process-global, so every test
//! serializes on [`LOCK`]; each uses its own seed to keep chains disjoint.

use std::sync::Mutex;

use schemachron_corpus::cards::all_cards;
use schemachron_corpus::pipeline::{self, build_project_traced, STAGE_ORDER};
use schemachron_corpus::{Card, Corpus, StageTrace};

static LOCK: Mutex<()> = Mutex::new(());

/// The four terminal artifacts a fully cached walk fetches, in walk order.
const WARM_STAGES: [&str; 4] = ["classify", "history", "metrics", "labels"];

fn assert_cold(trace: &StageTrace, name: &str) {
    assert_eq!(trace.hits(), 0, "{name}: cold build must not hit");
    assert_eq!(
        trace.missed_stages(),
        STAGE_ORDER.to_vec(),
        "{name}: cold build recomputes every stage in pipeline order"
    );
}

fn assert_warm(trace: &StageTrace, name: &str) {
    assert_eq!(trace.misses(), 0, "{name}: warm build must not recompute");
    let hit_stages: Vec<&str> = trace.entries().iter().map(|e| e.stage).collect();
    assert_eq!(
        hit_stages,
        WARM_STAGES.to_vec(),
        "{name}: warm build fetches only the terminal artifacts"
    );
}

#[test]
fn cold_build_misses_every_stage_in_order() {
    let _guard = LOCK.lock().unwrap();
    let card = all_cards().remove(0);
    pipeline::clear_stage_cache();
    let (_, trace) = build_project_traced(&card, 7701);
    assert_cold(&trace, &card.name);
}

#[test]
fn warm_build_hits_terminal_stages_only() {
    let _guard = LOCK.lock().unwrap();
    let card = all_cards().remove(0);
    pipeline::clear_stage_cache();
    let (first, _) = build_project_traced(&card, 7702);
    let (second, trace) = build_project_traced(&card, 7702);
    assert_warm(&trace, &card.name);
    assert_eq!(
        format!("{first:?}"),
        format!("{second:?}"),
        "cached rebuild must be byte-identical"
    );
}

#[test]
fn mutating_one_card_recomputes_only_that_chain() {
    let _guard = LOCK.lock().unwrap();
    let mut cards: Vec<Card> = all_cards().into_iter().take(4).collect();
    pipeline::clear_stage_cache();
    for card in &cards {
        let (_, trace) = build_project_traced(card, 7703);
        assert_cold(&trace, &card.name);
    }
    // Edit one project: its chain re-runs end to end, the rest stay cached.
    cards[1].name.push_str("-edited");
    for (i, card) in cards.iter().enumerate() {
        let (_, trace) = build_project_traced(card, 7703);
        if i == 1 {
            assert_cold(&trace, &card.name);
        } else {
            assert_warm(&trace, &card.name);
        }
    }
}

#[test]
fn different_seed_invalidates_every_chain() {
    let _guard = LOCK.lock().unwrap();
    let card = all_cards().remove(0);
    pipeline::clear_stage_cache();
    let (_, cold) = build_project_traced(&card, 7704);
    assert_cold(&cold, &card.name);
    let (_, other_seed) = build_project_traced(&card, 7705);
    assert_cold(&other_seed, &card.name);
}

#[test]
fn incremental_rebuild_is_byte_identical_across_jobs() {
    let _guard = LOCK.lock().unwrap();
    for jobs in [1, 8] {
        let mut mutated = all_cards();
        mutated[0].name.push_str("-incr");

        // From-scratch build of the mutated corpus.
        pipeline::clear_stage_cache();
        let scratch = Corpus::from_cards(mutated.clone(), 7706, jobs);

        // Incremental: warm the cache with the original corpus, then
        // rebuild with one card invalidated.
        pipeline::clear_stage_cache();
        let _ = Corpus::from_cards(all_cards(), 7706, jobs);
        let incremental = Corpus::from_cards(mutated, 7706, jobs);

        assert_eq!(
            format!("{:?}", scratch.projects()),
            format!("{:?}", incremental.projects()),
            "jobs={jobs}: incremental rebuild must equal a from-scratch build"
        );
    }
}
