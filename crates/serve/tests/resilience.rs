//! Serve-path resilience: request deadlines, circuit breaking, degraded
//! cached answers and recovery, driven through [`AppState::handle_guarded`]
//! with an installed fault plan. Fault state is process-global, so every
//! test holds [`GUARD`].

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use schemachron_fault as fault;
use schemachron_serve::http::Request;
use schemachron_serve::{AppState, GuardConfig};

static GUARD: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Cleanup;
impl Drop for Cleanup {
    fn drop(&mut self) {
        fault::clear();
        fault::set_epoch(0);
    }
}

fn get(target: &str) -> Request {
    Request::get(target)
}

fn state(deadline_ms: u64, cooldown_ms: u64) -> Arc<AppState> {
    let state = Arc::new(AppState::with_guard(
        42,
        GuardConfig {
            deadline: Duration::from_millis(deadline_ms),
            breaker_cooldown: Duration::from_millis(cooldown_ms),
        },
    ));
    // Warm the corpus/context caches outside the guard so deadlines below
    // measure injected stalls, not the first-touch corpus build.
    let warm = state.handle(&get("/corpus/42/projects"));
    assert_eq!(warm.status, 200);
    state
}

fn body_of(resp: &schemachron_serve::http::Response) -> String {
    String::from_utf8_lossy(&resp.body).into_owned()
}

#[test]
fn stalled_handler_times_out_with_504() {
    let _g = exclusive();
    let _c = Cleanup;
    let state = state(75, 60_000);
    fault::install(
        fault::FaultPlan::new(1, 1.0)
            .with_sites([fault::site::SERVE_REQUEST.to_owned()])
            .with_kinds([fault::FaultKind::Slow])
            .with_slow(Duration::from_millis(400)),
    );
    let resp = state.handle_guarded(&get("/corpus/42/projects?probe=timeout"));
    assert_eq!(resp.status, 504, "{}", body_of(&resp));
    let body = body_of(&resp);
    assert!(body.contains("request deadline exceeded"), "{body}");
    assert!(body.contains("\"deadline_ms\": 75"), "{body}");
}

#[test]
fn health_stays_reachable_under_full_fault_rate() {
    let _g = exclusive();
    let _c = Cleanup;
    let state = state(75, 60_000);
    fault::install(
        fault::FaultPlan::new(1, 1.0)
            .with_sites([fault::site::SERVE_REQUEST.to_owned()])
            .with_kinds([fault::FaultKind::Slow])
            .with_slow(Duration::from_millis(400)),
    );
    // /health is exempt from the guard: probes and CI smokes must always
    // land, even while every guarded route is stalling.
    let resp = state.handle_guarded(&get("/health"));
    assert_eq!(resp.status, 200);
    let body = body_of(&resp);
    assert!(body.contains("\"faults\""), "{body}");
    assert!(body.contains("\"active\": true"), "{body}");
}

#[test]
fn changes_timeouts_open_only_the_changes_breaker() {
    let _g = exclusive();
    let _c = Cleanup;
    let state = state(75, 60_000);
    fault::install(
        fault::FaultPlan::new(1, 1.0)
            .with_sites([fault::site::SERVE_REQUEST.to_owned()])
            .with_kinds([fault::FaultKind::Slow])
            .with_slow(Duration::from_millis(400)),
    );

    // /health stays exempt while the plan stalls every guarded route.
    assert_eq!(state.handle_guarded(&get("/health")).status, 200);

    // A stalled long-poll subscriber: 504s until the changes breaker
    // opens, then sheds with 503 (nothing cached for these targets).
    let mut opened = false;
    for i in 0..12 {
        let resp = state.handle_guarded(&get(&format!("/changes?wait_ms=0&probe={i}")));
        if resp.status == 503 {
            opened = true;
            break;
        }
        assert_eq!(resp.status, 504, "{}", body_of(&resp));
    }
    assert!(opened, "repeated long-poll timeouts must open the changes breaker");

    // The breaker that opened is the *changes* breaker: with the stall
    // lifted, a fast route answers immediately — no shed, no cooldown.
    fault::clear();
    let fast = state.handle_guarded(&get("/corpus/42/projects?probe=isolated"));
    assert_eq!(fast.status, 200, "{}", body_of(&fast));

    // /health names the per-route states: changes open, fast route closed.
    let health = body_of(&state.handle_guarded(&get("/health")));
    assert!(health.contains("\"changes\": \"open\""), "{health}");
    assert!(health.contains("\"corpus_projects\": \"closed\""), "{health}");
}

#[test]
fn breaker_opens_serves_degraded_and_recovers_via_half_open() {
    let _g = exclusive();
    let _c = Cleanup;
    let state = state(60, 300);

    // A clean 200 first, so the degraded cache has this exact target.
    let cached_target = "/corpus/42/projects?probe=cached";
    let ok = state.handle_guarded(&get(cached_target));
    assert_eq!(ok.status, 200);

    // Now stall every request until the route's breaker opens
    // (window ≥ 8 samples, ≥ half failures).
    fault::install(
        fault::FaultPlan::new(1, 1.0)
            .with_sites([fault::site::SERVE_REQUEST.to_owned()])
            .with_kinds([fault::FaultKind::Slow])
            .with_slow(Duration::from_millis(400)),
    );
    let mut opened = false;
    for i in 0..12 {
        let resp = state.handle_guarded(&get(&format!("/corpus/42/projects?probe=fail{i}")));
        if resp.status == 503 || body_of(&resp).contains("\"degraded\": true") {
            opened = true;
            break;
        }
        assert_eq!(resp.status, 504, "{}", body_of(&resp));
    }
    assert!(opened, "12 consecutive timeouts must open the breaker");

    // Shed requests for a previously-served target come from the degraded
    // cache: 200, flagged, carrying the cached payload.
    let degraded = state.handle_guarded(&get(cached_target));
    assert_eq!(degraded.status, 200, "{}", body_of(&degraded));
    let body = body_of(&degraded);
    assert!(body.contains("\"degraded\": true"), "{body}");
    assert!(body.contains("\"cached\""), "{body}");

    // A never-served target has nothing cached: shed as 503 + retry hint.
    let shed = state.handle_guarded(&get("/corpus/42/projects?probe=fresh"));
    assert_eq!(shed.status, 503, "{}", body_of(&shed));
    assert!(body_of(&shed).contains("circuit open"), "{}", body_of(&shed));

    // Lift the faults and wait out the cooldown: the next request is the
    // half-open probe; its success closes the breaker for good.
    fault::clear();
    std::thread::sleep(Duration::from_millis(400));
    let probe = state.handle_guarded(&get("/corpus/42/projects?probe=recovered"));
    assert_eq!(probe.status, 200, "{}", body_of(&probe));
    let after = state.handle_guarded(&get("/corpus/42/projects?probe=steady"));
    assert_eq!(after.status, 200, "{}", body_of(&after));

    // /health agrees the route is closed again.
    let health = state.handle_guarded(&get("/health"));
    let body = body_of(&health);
    assert!(
        body.contains("\"corpus_projects\": \"closed\""),
        "{body}"
    );
}
