//! Whole-project histories: schema + source heartbeats over the PUP.

use schemachron_model::{ChangeKind, Schema};

use crate::{Date, Heartbeat, IngestMode, MonthId, SchemaHistory};

/// A project's complete evolution record over its **Project Update Period**
/// (PUP): the time between the originating version and the last commit.
///
/// Both heartbeats are aligned to the same month range (index 0 is the
/// project's first month), so time indices are directly comparable — this
/// is the structure every §3.2 metric is computed from.
#[derive(Clone, Debug, PartialEq)]
pub struct ProjectHistory {
    name: String,
    start: MonthId,
    schema: Heartbeat,
    schema_expansion: Heartbeat,
    schema_maintenance: Heartbeat,
    source: Heartbeat,
    kind_totals: [usize; 6],
    schema_history: Option<SchemaHistory>,
}

impl ProjectHistory {
    /// Builds a project history directly from aligned heartbeat values
    /// (mainly for tests and loaders of pre-aggregated datasets).
    ///
    /// `schema` and `source` must have the same length; `kind_totals` is the
    /// per-[`ChangeKind`] breakdown in [`ChangeKind::all`] order.
    pub fn from_heartbeats(
        name: impl Into<String>,
        start: MonthId,
        schema: Vec<f64>,
        source: Vec<f64>,
        kind_totals: [usize; 6],
    ) -> Self {
        assert_eq!(
            schema.len(),
            source.len(),
            "schema and source heartbeats must be aligned"
        );
        ProjectHistory {
            name: name.into(),
            start,
            schema: Heartbeat::from_values(start, schema.clone()),
            schema_expansion: Heartbeat::from_values(start, vec![0.0; schema.len()]),
            schema_maintenance: Heartbeat::from_values(start, vec![0.0; schema.len()]),
            source: Heartbeat::from_values(start, source),
            kind_totals,
            schema_history: None,
        }
    }

    /// The project name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The first month of the PUP.
    pub fn start(&self) -> MonthId {
        self.start
    }

    /// The PUP length in months.
    pub fn month_count(&self) -> usize {
        self.schema.month_count()
    }

    /// The schema heartbeat (affected attributes per month), PUP-aligned.
    pub fn schema_heartbeat(&self) -> &Heartbeat {
        &self.schema
    }

    /// The expansion-only part of the schema heartbeat.
    pub fn schema_expansion(&self) -> &Heartbeat {
        &self.schema_expansion
    }

    /// The maintenance-only part of the schema heartbeat.
    pub fn schema_maintenance(&self) -> &Heartbeat {
        &self.schema_maintenance
    }

    /// The source-code heartbeat (changed lines per month), PUP-aligned.
    pub fn source_heartbeat(&self) -> &Heartbeat {
        &self.source
    }

    /// Total schema activity (affected attributes) over the whole history.
    pub fn schema_total(&self) -> f64 {
        self.schema.total()
    }

    /// The month index (0-based, within the PUP) of schema birth — the first
    /// month with schema activity. `None` when the schema never appears.
    pub fn schema_birth_index(&self) -> Option<usize> {
        self.schema.first_active_index()
    }

    /// Per-[`ChangeKind`] totals, in [`ChangeKind::all`] order.
    pub fn kind_totals(&self) -> [usize; 6] {
        self.kind_totals
    }

    /// Total expansion changes (born-with-table + injected).
    pub fn expansion_total(&self) -> usize {
        ChangeKind::all()
            .iter()
            .zip(self.kind_totals)
            .filter(|(k, _)| k.is_expansion())
            .map(|(_, n)| n)
            .sum()
    }

    /// Total maintenance changes (deletions, type and key updates).
    pub fn maintenance_total(&self) -> usize {
        ChangeKind::all()
            .iter()
            .zip(self.kind_totals)
            .filter(|(k, _)| k.is_maintenance())
            .map(|(_, n)| n)
            .sum()
    }

    /// The detailed version history, when the project was built from DDL.
    pub fn schema_history(&self) -> Option<&SchemaHistory> {
        self.schema_history.as_ref()
    }

    /// Assembles a project history from an already-built [`SchemaHistory`]
    /// plus dated source-commit events.
    ///
    /// This is the final assembly step shared by [`ProjectHistoryBuilder`]
    /// and staged pipelines that cache the schema history separately: the
    /// per-version diffs become the schema/expansion/maintenance heartbeats,
    /// the source events become the source heartbeat, and all four are
    /// aligned to the full PUP (earliest to latest event of either line).
    pub fn from_schema_history(
        name: impl Into<String>,
        history: SchemaHistory,
        source_events: &[(Date, f64)],
    ) -> ProjectHistory {
        let mut schema = Heartbeat::new();
        let mut expansion = Heartbeat::new();
        let mut maintenance = Heartbeat::new();
        let mut kind_totals = [0usize; 6];
        for v in history.versions() {
            let m = v.date.month_id();
            schema.add(m, v.diff.attribute_change_count() as f64);
            expansion.add(m, v.diff.expansion_count() as f64);
            maintenance.add(m, v.diff.maintenance_count() as f64);
            for (i, k) in ChangeKind::all().iter().enumerate() {
                kind_totals[i] += v.diff.count_of(*k);
            }
        }

        let mut source = Heartbeat::new();
        for (date, lines) in source_events {
            source.add(date.month_id(), *lines);
        }

        // PUP spans from the earliest to the latest event of either line.
        let starts = [schema.start(), source.start()];
        let start = starts.iter().flatten().min().copied();
        let ends = [
            schema
                .start()
                .map(|s| s.plus(schema.month_count() as i32 - 1)),
            source
                .start()
                .map(|s| s.plus(source.month_count() as i32 - 1)),
        ];
        let end = ends.iter().flatten().max().copied();
        if let (Some(start), Some(end)) = (start, end) {
            schema.extend_to_cover(start, end);
            expansion.extend_to_cover(start, end);
            maintenance.extend_to_cover(start, end);
            source.extend_to_cover(start, end);
        }

        ProjectHistory {
            name: name.into(),
            start: start.unwrap_or(MonthId(0)),
            schema,
            schema_expansion: expansion,
            schema_maintenance: maintenance,
            source,
            kind_totals,
            schema_history: Some(history),
        }
    }
}

/// One pending schema version: DDL text or a pre-built logical schema.
#[derive(Debug)]
enum SchemaEntry {
    Sql(String, IngestMode),
    Direct(Schema),
}

/// Builds a [`ProjectHistory`] from dated DDL texts (or pre-built schemas)
/// plus source-commit events. See the crate-level example.
#[derive(Debug)]
pub struct ProjectHistoryBuilder {
    name: String,
    schema_entries: Vec<(Date, SchemaEntry)>,
    source_events: Vec<(Date, f64)>,
}

impl ProjectHistoryBuilder {
    /// Starts a builder for the named project.
    pub fn new(name: impl Into<String>) -> Self {
        ProjectHistoryBuilder {
            name: name.into(),
            schema_entries: Vec::new(),
            source_events: Vec::new(),
        }
    }

    /// Adds a full-dump schema version.
    pub fn snapshot(&mut self, date: Date, sql: impl Into<String>) -> &mut Self {
        self.schema_entries
            .push((date, SchemaEntry::Sql(sql.into(), IngestMode::Snapshot)));
        self
    }

    /// Adds a migration script applied on top of the previous version.
    pub fn migration(&mut self, date: Date, sql: impl Into<String>) -> &mut Self {
        self.schema_entries
            .push((date, SchemaEntry::Sql(sql.into(), IngestMode::Migration)));
        self
    }

    /// Adds a pre-built logical schema as a version — the ingestion path
    /// for non-SQL sources (e.g. implicit schemata of document stores).
    pub fn schema_version(&mut self, date: Date, schema: Schema) -> &mut Self {
        self.schema_entries
            .push((date, SchemaEntry::Direct(schema)));
        self
    }

    /// Records source-code activity (e.g. lines changed by a commit).
    pub fn source_commit(&mut self, date: Date, lines_changed: f64) -> &mut Self {
        self.source_events.push((date, lines_changed));
        self
    }

    /// Finalizes the project history. Schema versions are sorted by date;
    /// the two heartbeats are aligned to the full PUP.
    pub fn build(self) -> ProjectHistory {
        let mut entries = self.schema_entries;
        entries.sort_by_key(|(d, _)| *d);
        let mut history = SchemaHistory::new();
        for (date, entry) in entries {
            match entry {
                SchemaEntry::Sql(sql, mode) => history.push(mode, date, &sql),
                SchemaEntry::Direct(schema) => history.push_schema(date, schema),
            }
        }
        ProjectHistory::from_schema_history(self.name, history, &self.source_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::new(y, m, day)
    }

    #[test]
    fn heartbeats_align_to_full_pup() {
        let mut b = ProjectHistoryBuilder::new("p");
        b.source_commit(d(2020, 1, 1), 10.0);
        b.snapshot(d(2020, 6, 1), "CREATE TABLE t (a INT);");
        b.source_commit(d(2020, 12, 1), 5.0);
        let p = b.build();
        assert_eq!(p.month_count(), 12);
        assert_eq!(p.schema_birth_index(), Some(5));
        assert_eq!(p.schema_total(), 1.0);
        assert_eq!(p.source_heartbeat().total(), 15.0);
        assert_eq!(p.start(), MonthId::from_ym(2020, 1));
    }

    #[test]
    fn schema_before_source_extends_left() {
        let mut b = ProjectHistoryBuilder::new("p");
        b.snapshot(d(2020, 1, 1), "CREATE TABLE t (a INT);");
        b.source_commit(d(2020, 3, 1), 10.0);
        let p = b.build();
        assert_eq!(p.month_count(), 3);
        assert_eq!(p.schema_birth_index(), Some(0));
    }

    #[test]
    fn expansion_and_maintenance_split() {
        let mut b = ProjectHistoryBuilder::new("p");
        b.snapshot(d(2020, 1, 1), "CREATE TABLE t (a INT, b INT);");
        b.snapshot(d(2020, 2, 1), "CREATE TABLE t (a INT);"); // b ejected
        let p = b.build();
        assert_eq!(p.expansion_total(), 2);
        assert_eq!(p.maintenance_total(), 1);
        assert_eq!(p.schema_expansion().total(), 2.0);
        assert_eq!(p.schema_maintenance().total(), 1.0);
        assert_eq!(p.schema_total(), 3.0);
    }

    #[test]
    fn same_month_versions_aggregate() {
        let mut b = ProjectHistoryBuilder::new("p");
        b.snapshot(d(2020, 1, 3), "CREATE TABLE t (a INT);");
        b.snapshot(d(2020, 1, 20), "CREATE TABLE t (a INT, b INT);");
        let p = b.build();
        assert_eq!(p.month_count(), 1);
        assert_eq!(p.schema_heartbeat().values(), &[2.0]);
    }

    #[test]
    fn from_heartbeats_constructor() {
        let p = ProjectHistory::from_heartbeats(
            "direct",
            MonthId::from_ym(2019, 1),
            vec![5.0, 0.0, 1.0],
            vec![10.0, 10.0, 10.0],
            [5, 1, 0, 0, 0, 0],
        );
        assert_eq!(p.month_count(), 3);
        assert_eq!(p.expansion_total(), 6);
        assert_eq!(p.maintenance_total(), 0);
        assert!(p.schema_history().is_none());
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn from_heartbeats_rejects_misaligned() {
        let _ =
            ProjectHistory::from_heartbeats("bad", MonthId(0), vec![1.0], vec![1.0, 2.0], [0; 6]);
    }

    #[test]
    fn empty_project_is_safe() {
        let p = ProjectHistoryBuilder::new("empty").build();
        assert_eq!(p.month_count(), 0);
        assert_eq!(p.schema_birth_index(), None);
        assert_eq!(p.schema_total(), 0.0);
    }

    #[test]
    fn migration_entries_mix_with_source() {
        let mut b = ProjectHistoryBuilder::new("p");
        b.migration(d(2021, 1, 1), "CREATE TABLE a (x INT);");
        b.migration(d(2021, 4, 1), "ALTER TABLE a ADD COLUMN y INT;");
        b.source_commit(d(2021, 6, 1), 1.0);
        let p = b.build();
        assert_eq!(p.month_count(), 6);
        assert_eq!(p.schema_total(), 2.0);
        let hist = p.schema_history().unwrap();
        assert_eq!(hist.versions().len(), 2);
        assert_eq!(
            hist.last_schema()
                .unwrap()
                .table("a")
                .unwrap()
                .attribute_count(),
            2
        );
    }
}
