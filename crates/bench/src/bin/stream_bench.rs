//! Streaming ingestion latency benchmark.
//!
//! Replays real corpus commit chains through [`StreamStore`]s — the same
//! WAL-backed path `POST /project/{id}/commit` takes — and measures, per
//! appended commit:
//!
//! 1. **append→ack** — the fsync-inclusive wall time of
//!    `StreamStore::append` returning the classification ack;
//! 2. **commit→feed** — time from the append call until the transition is
//!    readable on the change feed (`events_since` returns its cursor).
//!
//! Both are measured at 1 and 8 concurrent ingestion threads (each thread
//! owns its own store, as each served project directory does), over the
//! same total commit volume, so the report shows how the shared stage
//! cache behaves under contention.
//!
//! Writes `BENCH_stream.json` at the workspace root and exits nonzero when
//! the incremental-reclassification gate fails: on a warm store, **one
//! append must trigger at most one stream-classify chain re-run** (the
//! whole point of keying the stage on the WAL chain checksum — an append
//! never re-runs earlier prefixes).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use schemachron_corpus::materialize::materialize;
use schemachron_corpus::{pipeline, Corpus};
use schemachron_history::Date;
use schemachron_stream::{Append, StreamStore};

/// Timing repetitions; the fastest rep is reported to damp scheduler noise.
const REPS: usize = 3;

/// Concurrent ingestion thread counts under test.
const JOBS: [usize; 2] = [1, 8];

/// Chains streamed per run (divisible by every entry of [`JOBS`] so each
/// thread count ingests the same total volume).
const CHAINS: usize = 16;

/// Commits taken per chain (long enough that classification transitions).
const COMMITS_PER_CHAIN: usize = 24;

/// Shortest usable chain; the corpus's flatliner projects are skipped.
const MIN_COMMITS: usize = 4;

/// The stage the re-run gate watches.
const STREAM_STAGE: &str = "stream-classify";

/// The gate: chain re-runs (stage-cache misses) one append may trigger.
const GATE_MAX_RERUNS: u64 = 1;

/// Latencies of one ingestion run, in nanoseconds.
#[derive(Default)]
struct Latencies {
    ack_ns: Vec<u64>,
    feed_ns: Vec<u64>,
}

fn mean_us(ns: &[u64]) -> f64 {
    if ns.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let total: f64 = ns.iter().map(|&n| n as f64).sum();
    total / ns.len() as f64 / 1e3
}

fn max_us(ns: &[u64]) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    ns.iter().copied().max().map_or(0.0, |n| n as f64 / 1e3)
}

/// Streams `chains` into a fresh store under `root`, timing every append.
fn ingest(root: &std::path::Path, chains: &[(String, Vec<(Date, String)>)]) -> Latencies {
    let _ = std::fs::remove_dir_all(root);
    let mut store = StreamStore::open(root).expect("stream store opens");
    let mut lat = Latencies::default();
    for (name, commits) in chains {
        for (i, (date, sql)) in commits.iter().enumerate() {
            let seq = (i + 1) as u64;
            let start = Instant::now();
            let ack = store
                .append(name, seq, &date.to_string(), sql)
                .expect("append succeeds");
            let ack_ns = start.elapsed().as_nanos();
            let Append::Appended { cursor, .. } = ack else {
                panic!("{name} seq {seq}: fresh append reported duplicate");
            };
            // Propagation: the transition must already be on the feed.
            let batch = store.events_since(cursor - 1, 1);
            assert_eq!(
                batch.events.first().map(|e| e.cursor),
                Some(cursor),
                "{name} seq {seq}: feed lost the append"
            );
            let feed_ns = start.elapsed().as_nanos();
            lat.ack_ns.push(u64::try_from(ack_ns).unwrap_or(u64::MAX));
            lat.feed_ns.push(u64::try_from(feed_ns).unwrap_or(u64::MAX));
        }
    }
    drop(store);
    let _ = std::fs::remove_dir_all(root);
    lat
}

fn main() {
    let seed = schemachron_bench::DEFAULT_SEED;
    let corpus = Corpus::generate(seed);
    let chains: Vec<(String, Vec<(Date, String)>)> = corpus
        .projects()
        .iter()
        .filter_map(|p| {
            let mat = materialize(&p.card, seed);
            let commits: Vec<(Date, String)> = mat
                .ddl_commits
                .into_iter()
                .take(COMMITS_PER_CHAIN)
                .collect();
            (commits.len() >= MIN_COMMITS).then(|| (p.card.name.clone(), commits))
        })
        .take(CHAINS)
        .collect();
    let commits: usize = chains.iter().map(|(_, c)| c.len()).sum();
    println!(
        "bench: stream  {} chains, {commits} commits, reps {REPS}",
        chains.len()
    );

    let mut per_jobs = Vec::new();
    for jobs in JOBS {
        let mut best_ms = f64::INFINITY;
        let mut best = Latencies::default();
        for rep in 0..REPS {
            // Cold stage cache every rep: each append pays its own (single)
            // chain classification, like a freshly started server would.
            pipeline::clear_stage_cache();
            let counter = AtomicU64::new(0);
            let start = Instant::now();
            let lat: Latencies = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs)
                    .map(|worker| {
                        let chains = &chains;
                        let counter = &counter;
                        scope.spawn(move || {
                            let root = std::env::temp_dir().join(format!(
                                "schemachron-stream-bench-{}-{rep}-{jobs}-{worker}",
                                std::process::id()
                            ));
                            let mut lat = Latencies::default();
                            // Work-steal chains by index so every thread
                            // count ingests the identical total volume.
                            loop {
                                let i = counter.fetch_add(1, Ordering::Relaxed) as usize;
                                if i >= chains.len() {
                                    break;
                                }
                                let one = ingest(&root, &chains[i..=i]);
                                lat.ack_ns.extend(one.ack_ns);
                                lat.feed_ns.extend(one.feed_ns);
                            }
                            let _ = std::fs::remove_dir_all(&root);
                            lat
                        })
                    })
                    .collect();
                let mut merged = Latencies::default();
                for h in handles {
                    let one = h.join().expect("ingestion thread");
                    merged.ack_ns.extend(one.ack_ns);
                    merged.feed_ns.extend(one.feed_ns);
                }
                merged
            });
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(lat.ack_ns.len(), commits, "every commit must be timed");
            if elapsed_ms < best_ms {
                best_ms = elapsed_ms;
                best = lat;
            }
        }
        println!(
            "bench: stream  jobs={jobs}  append→ack mean {:>8.1}µs max {:>9.1}µs  \
             commit→feed mean {:>8.1}µs max {:>9.1}µs  wall {best_ms:>8.1}ms",
            mean_us(&best.ack_ns),
            max_us(&best.ack_ns),
            mean_us(&best.feed_ns),
            max_us(&best.feed_ns),
        );
        per_jobs.push(serde_json::json!({
            "jobs": jobs,
            "append_ack_mean_us": (mean_us(&best.ack_ns)),
            "append_ack_max_us": (max_us(&best.ack_ns)),
            "feed_propagation_mean_us": (mean_us(&best.feed_ns)),
            "feed_propagation_max_us": (max_us(&best.feed_ns)),
            "elapsed_ms": best_ms,
        }));
    }

    // The incremental gate: stream a whole chain into a warm store, then
    // append one more commit and count stream-classify recomputations.
    let (gate_name, gate_commits) = chains
        .iter()
        .max_by_key(|(_, c)| c.len())
        .expect("at least one chain");
    let gate_root = std::env::temp_dir().join(format!(
        "schemachron-stream-bench-gate-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&gate_root);
    pipeline::clear_stage_cache();
    let mut store = StreamStore::open(&gate_root).expect("gate store opens");
    let (last, warm) = gate_commits.split_last().expect("chain is non-empty");
    for (i, (date, sql)) in warm.iter().enumerate() {
        store
            .append(gate_name, (i + 1) as u64, &date.to_string(), sql)
            .expect("warmup append");
    }
    pipeline::reset_stage_stats();
    store
        .append(gate_name, gate_commits.len() as u64, &last.0.to_string(), &last.1)
        .expect("gated append");
    let stats = pipeline::stage_stats_for(&[STREAM_STAGE]);
    let (reruns, hits) = stats
        .first()
        .map_or((0, 0), |s| (s.misses, s.hits));
    drop(store);
    let _ = std::fs::remove_dir_all(&gate_root);
    println!(
        "bench: stream  gate: 1 append → {reruns} chain re-run(s), {hits} cache hit(s) \
         (max allowed {GATE_MAX_RERUNS})"
    );

    let report = serde_json::json!({
        "bench": "stream/append_feed_latency",
        "seed": seed,
        "reps": REPS,
        "chains": (chains.len()),
        "commits": commits,
        "per_jobs": (serde_json::Value::Array(per_jobs)),
        "gate": {
            "stage": STREAM_STAGE,
            "max_chain_reruns_per_append": GATE_MAX_RERUNS,
            "observed_reruns": reruns,
            "observed_hits": hits,
        },
    });
    // CARGO_MANIFEST_DIR = crates/bench, so ../.. is the workspace root.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    match std::fs::write(out, serde_json::to_string_pretty(&report).unwrap()) {
        Ok(()) => println!("bench: wrote {out}"),
        Err(e) => eprintln!("bench: could not write {out}: {e}"),
    }

    if reruns > GATE_MAX_RERUNS {
        eprintln!(
            "bench: FAIL — a single append re-ran the {STREAM_STAGE} stage {reruns} \
             times (max {GATE_MAX_RERUNS}); incremental re-classification regressed"
        );
        std::process::exit(1);
    }
}
