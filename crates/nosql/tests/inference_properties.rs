//! Property-based tests for the implicit-schema inference.

use proptest::prelude::*;

use schemachron_nosql::{infer_entity, infer_schema, Collections, JsonType};
use serde_json::{json, Value};

/// A strategy over arbitrary JSON values of bounded depth/size.
fn arb_json() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|n| json!(n)),
        "[a-z]{0,8}".prop_map(Value::String),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            proptest::collection::btree_map("[a-z]{1,6}", inner, 0..4)
                .prop_map(|m| { Value::Object(m.into_iter().collect()) }),
        ]
    })
}

proptest! {
    #[test]
    fn inference_never_panics(docs in proptest::collection::vec(arb_json(), 0..8)) {
        let _ = infer_entity("e", &docs);
    }

    #[test]
    fn inference_is_deterministic(docs in proptest::collection::vec(arb_json(), 0..6)) {
        prop_assert_eq!(infer_entity("e", &docs), infer_entity("e", &docs));
    }

    #[test]
    fn duplicating_a_document_changes_nothing_but_nullability(
        docs in proptest::collection::vec(arb_json(), 1..5)
    ) {
        // Field set and types are invariant under duplicating the corpus;
        // presence counts double so NOT NULL flags are also invariant.
        let once = infer_entity("e", &docs);
        let mut doubled = docs.clone();
        doubled.extend(docs.iter().cloned());
        let twice = infer_entity("e", &doubled);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn every_scalar_field_appears_as_attribute(
        keys in proptest::collection::btree_set("[a-z]{1,6}", 1..6)
    ) {
        let mut obj = serde_json::Map::new();
        for (i, k) in keys.iter().enumerate() {
            obj.insert(k.clone(), json!(i));
        }
        let t = infer_entity("e", &[Value::Object(obj)]);
        prop_assert_eq!(t.attribute_count(), keys.len());
        for k in &keys {
            prop_assert!(t.attribute(k).is_some(), "{k} missing");
        }
    }

    #[test]
    fn unify_is_associative(
        a in 0usize..7, b in 0usize..7, c in 0usize..7
    ) {
        use JsonType::*;
        let all = [Null, Bool, Number, String, Array, Object, Mixed];
        let (x, y, z) = (all[a].clone(), all[b].clone(), all[c].clone());
        prop_assert_eq!(
            x.clone().unify(y.clone()).unify(z.clone()),
            x.unify(y.unify(z))
        );
    }
}

#[test]
fn whole_store_inference_is_per_entity() {
    let mut store = Collections::new();
    store.add_json("a", r#"{"x": 1}"#).unwrap();
    store.add_json("b", r#"{"y": "s"}"#).unwrap();
    let schema = infer_schema(&store);
    assert_eq!(schema.table_count(), 2);
    assert_eq!(
        schema.table("a").unwrap(),
        &infer_entity("a", &[serde_json::from_str(r#"{"x": 1}"#).unwrap()])
    );
}
