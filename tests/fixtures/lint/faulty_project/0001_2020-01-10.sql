DROP TABLE users;
CREATE TABLE orders (
  id INT,
  customer_id INT REFERENCES customers (id)
);
