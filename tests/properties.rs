//! Property-based tests over the core invariants of the pipeline.

use proptest::prelude::*;

use schemachron::core::metrics::TimeMetrics;
use schemachron::core::quantize::{
    ActiveGrowthClass, ActivePupClass, BirthVolumeClass, IntervalClass, Labels, TailClass,
    TimepointClass,
};
use schemachron::core::{classify, classify_nearest, Pattern};
use schemachron::ddl::parse_schema;
use schemachron::history::{Heartbeat, MonthId, ProjectHistory};
use schemachron::model::{diff, render_schema_sql, Attribute, DataType, Name, Schema, Table};
use schemachron_corpus::{Card, Corpus};

// ------------------------------------------------------------ strategies

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}"
}

fn data_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::named("int")),
        Just(DataType::named("bigint")),
        Just(DataType::named("text")),
        (1i64..500).prop_map(|n| DataType::with_params("varchar", vec![n])),
        (1i64..20, 0i64..10).prop_map(|(p, s)| DataType::with_params("decimal", vec![p, s])),
        Just(DataType::named("int").with_modifier("unsigned")),
    ]
}

prop_compose! {
    fn table()(name in ident(),
               cols in proptest::collection::btree_set(ident(), 1..8),
               types in proptest::collection::vec(data_type(), 8),
               pk in any::<bool>())
        -> Table
    {
        let mut t = Table::new(name);
        for (i, c) in cols.iter().enumerate() {
            t.push_attribute(Attribute::new(c.clone(), types[i % types.len()].clone()));
        }
        if pk {
            t.primary_key = vec![t.attributes()[0].name.clone()];
        }
        t
    }
}

fn schema() -> impl Strategy<Value = Schema> {
    proptest::collection::vec(table(), 0..6).prop_map(|tables| {
        let mut s = Schema::new();
        for t in tables {
            s.insert_table(t);
        }
        s
    })
}

// ------------------------------------------------------------ the tests

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,300}") {
        let _ = parse_schema(&input);
    }

    #[test]
    fn parser_never_panics_on_sqlish_input(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("CREATE TABLE".to_owned()),
                Just("ALTER TABLE".to_owned()),
                Just("DROP".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just(",".to_owned()),
                Just(";".to_owned()),
                Just("PRIMARY KEY".to_owned()),
                Just("'str".to_owned()),
                Just("`tick".to_owned()),
                ident(),
            ],
            0..40,
        )
    ) {
        let _ = parse_schema(&parts.join(" "));
    }

    #[test]
    fn render_parse_roundtrip(s in schema()) {
        let sql = render_schema_sql(&s);
        let (parsed, diags) = parse_schema(&sql);
        prop_assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}\n{sql}");
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn diff_of_identical_schemas_is_empty(s in schema()) {
        prop_assert!(diff(&s, &s.clone()).is_empty());
    }

    #[test]
    fn diff_from_empty_counts_every_attribute_as_born(s in schema()) {
        let d = diff(&Schema::new(), &s);
        prop_assert_eq!(d.attribute_change_count(), s.attribute_count());
        prop_assert_eq!(d.expansion_count(), s.attribute_count());
        prop_assert_eq!(d.maintenance_count(), 0);
    }

    #[test]
    fn diff_partitions_into_expansion_and_maintenance(a in schema(), b in schema()) {
        let d = diff(&a, &b);
        prop_assert_eq!(
            d.expansion_count() + d.maintenance_count(),
            d.attribute_change_count()
        );
    }

    #[test]
    fn diff_direction_mirrors_births_and_deletions(a in schema(), b in schema()) {
        use schemachron::model::ChangeKind;
        let fwd = diff(&a, &b);
        let back = diff(&b, &a);
        prop_assert_eq!(
            fwd.count_of(ChangeKind::AttributeBornWithTable),
            back.count_of(ChangeKind::AttributeDeletedWithTable)
        );
        prop_assert_eq!(
            fwd.count_of(ChangeKind::AttributeInjected),
            back.count_of(ChangeKind::AttributeEjected)
        );
        prop_assert_eq!(fwd.tables_added.len(), back.tables_dropped.len());
    }

    #[test]
    fn name_comparison_is_ascii_case_insensitive(s in "[a-zA-Z_][a-zA-Z0-9_]{0,12}") {
        prop_assert_eq!(Name::from(s.to_ascii_uppercase()), Name::from(s.to_ascii_lowercase()));
    }

    #[test]
    fn heartbeat_cumulative_is_monotone_unit_bounded(
        events in proptest::collection::vec((0i32..120, 0.0f64..50.0), 1..30)
    ) {
        let mut h = Heartbeat::new();
        for (m, v) in &events {
            h.add(MonthId(*m), *v);
        }
        let c = h.cumulative_fraction();
        prop_assert!(c.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        prop_assert!(c.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
        let total: f64 = events.iter().map(|(_, v)| v).sum();
        prop_assert!((h.total() - total).abs() < 1e-9);
    }

    #[test]
    fn metrics_are_internally_consistent(
        activity in proptest::collection::vec(0.0f64..40.0, 13..80),
        spark in 0usize..12,
    ) {
        // Ensure at least one active month.
        let mut activity = activity;
        let idx = spark % activity.len();
        activity[idx] += 1.0;
        let n = activity.len();
        let p = ProjectHistory::from_heartbeats("prop", MonthId(0), activity, vec![1.0; n], [0; 6]);
        let m = TimeMetrics::from_project(&p).expect("active");
        prop_assert!(m.birth_index <= m.topband_index);
        prop_assert!((0.0..=1.0).contains(&m.birth_pct_pup));
        prop_assert!((0.0..=1.0).contains(&m.topband_pct_pup));
        prop_assert!((0.0..=1.0).contains(&m.birth_volume_pct_total));
        prop_assert!(m.interval_birth_to_top_pct >= -1e-12);
        prop_assert!(
            (m.interval_birth_to_top_pct + m.birth_pct_pup - m.topband_pct_pup).abs() < 1e-9
        );
        prop_assert!((m.interval_top_to_end_pct + m.topband_pct_pup - 1.0).abs() < 1e-9);
        prop_assert_eq!(m.has_single_vault, m.interval_birth_to_top_pct < 0.10);
        prop_assert!((m.birth_volume + m.activity_after_birth - m.total_activity).abs() < 1e-9);
        // Quantization always succeeds and stays in-range.
        let l = Labels::from_metrics(&m);
        prop_assert!(l.birth_point.ordinal() < 4);
        prop_assert!(l.interval_birth_to_top.ordinal() < 5);
    }

    #[test]
    fn at_most_one_pattern_matches_any_profile(
        bv in 0usize..4, bp in 0usize..4, tp in 0usize..4,
        iv in 0usize..5, tl in 0usize..4, ag in 0usize..4,
        ap in 0usize..4, agm in 0usize..20, vault in any::<bool>(),
    ) {
        let l = Labels {
            birth_volume: BirthVolumeClass::ALL[bv],
            birth_point: TimepointClass::ALL[bp],
            topband_point: TimepointClass::ALL[tp],
            interval_birth_to_top: IntervalClass::ALL[iv],
            interval_top_to_end: TailClass::ALL[tl],
            active_growth: ActiveGrowthClass::ALL[ag],
            active_pup: ActivePupClass::ALL[ap],
            active_growth_months: agm,
            has_single_vault: vault,
        };
        let matching: Vec<Pattern> =
            Pattern::ALL.iter().copied().filter(|p| p.matches(&l)).collect();
        prop_assert!(matching.len() <= 1, "{matching:?}");
        // classify agrees with the match; nearest agrees when strict.
        prop_assert_eq!(classify(&l), matching.first().copied());
        let (nearest, violations) = classify_nearest(&l);
        match matching.first() {
            Some(&p) => {
                prop_assert_eq!(nearest, p);
                prop_assert_eq!(violations, 0);
            }
            None => prop_assert!(violations > 0),
        }
    }

    #[test]
    fn feasible_cards_always_schedule_exactly(
        duration in 13u32..90,
        birth_frac_pct in 20u32..70,
        total in 30u32..300,
        agm in 0u32..4,
        seed in 0u64..50,
    ) {
        // Construct a feasible card: birth early-ish, top well after birth.
        let birth = duration / 10;
        let top = (birth + 5 + agm).min(duration - 1);
        let card = Card {
            name: format!("prop-{duration}-{total}"),
            pattern: Pattern::QuantumSteps,
            exception: false,
            duration,
            birth_month: birth,
            top_month: top,
            agm,
            birth_frac: birth_frac_pct as f64 / 100.0,
            total_units: total,
            tail_units: total / 20,
            tail_months: 1,
            maintenance_bias: 0.2,
        };
        let s = card.schedule();
        prop_assert_eq!(s.total(), total);
        let months: Vec<u32> = s.events.iter().map(|(m, _)| *m).collect();
        let mut sorted = months.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&months, &sorted, "unique and sorted");
        prop_assert!(months.iter().all(|&m| m < duration));
        // Materialization reproduces the schedule exactly.
        let mat = schemachron_corpus::materialize::materialize(&card, seed);
        let mut b = schemachron::history::ProjectHistoryBuilder::new(&card.name);
        for (d, sql) in &mat.ddl_commits {
            b.migration(*d, sql.clone());
        }
        for (d, l) in &mat.source_commits {
            b.source_commit(*d, *l);
        }
        let p = b.build();
        prop_assert_eq!(p.schema_total() as u32, total);
        prop_assert_eq!(p.schema_birth_index(), Some(birth as usize));
    }
}

#[test]
fn corpus_regeneration_is_deterministic() {
    let a = Corpus::generate(7);
    let b = Corpus::generate(7);
    for (x, y) in a.projects().iter().zip(b.projects()) {
        assert_eq!(x.labels, y.labels);
        assert_eq!(x.metrics, y.metrics);
    }
}
