//! Corpus study: re-run the paper's whole analysis in one go — the three
//! pattern families and their populations, the validation checks (cohesion,
//! disjointedness, decision tree), and the headline "aversion to change"
//! findings.
//!
//! Run with: `cargo run --example corpus_study`

use std::collections::BTreeMap;

use schemachron::core::metrics::TimeMetrics;
use schemachron::core::validate::{cohesion, completeness, disjointedness, LINE_POINTS};
use schemachron::core::{Family, Pattern};
use schemachron::corpus::Corpus;
use schemachron::stats::{DecisionTree, TreeConfig};

fn main() {
    let corpus = Corpus::generate(42);
    let n = corpus.projects().len();
    println!("corpus: {n} FOSS-like schema histories (> 12 months each)\n");

    // ---- the three families ---------------------------------------------
    println!("pattern families:");
    for family in Family::ALL {
        let members = corpus
            .projects()
            .iter()
            .filter(|p| p.assigned.family() == family)
            .count();
        println!(
            "  {:<28} {:>3} projects ({:.0}%)",
            family.name(),
            members,
            100.0 * members as f64 / n as f64
        );
        for pattern in Pattern::ALL.iter().filter(|p| p.family() == family) {
            println!(
                "      {:<22} {:>3}",
                pattern.name(),
                corpus.of_pattern(*pattern).count()
            );
        }
    }

    // ---- aversion to change ----------------------------------------------
    let zero_agm = corpus
        .projects()
        .iter()
        .filter(|p| p.metrics.active_growth_months == 0)
        .count();
    let vaulted = corpus
        .projects()
        .iter()
        .filter(|p| p.metrics.has_single_vault)
        .count();
    println!(
        "\naversion to change: {zero_agm}/{n} projects have zero active growth months; \
         {vaulted}/{n} rise to the top band in a single vault"
    );

    // ---- validation -------------------------------------------------------
    let items = corpus.annotated_labels();
    let dis = disjointedness(&items);
    let comp = completeness(&items);
    println!(
        "\nvalidation: {} populated label cells, {} overlap cells; \
         {}/{} attainable cells covered",
        dis.populated_cells, dis.overlap_cells, comp.covered_cells, comp.attainable_cells
    );

    let mut lines: BTreeMap<Pattern, Vec<Vec<f64>>> = BTreeMap::new();
    for p in corpus.projects() {
        lines
            .entry(p.assigned)
            .or_default()
            .push(TimeMetrics::quantized_line(&p.history, LINE_POINTS));
    }
    let mdc = cohesion(&lines);
    let (lo, hi) = mdc
        .values()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    println!("cohesion: per-pattern mean distance to centroid in [{lo:.2}, {hi:.2}]");

    // ---- the Fig. 5 decision tree ------------------------------------------
    let features: Vec<Vec<u8>> = corpus
        .projects()
        .iter()
        .map(|p| schemachron::core::quantize::tree_features(&p.labels))
        .collect();
    let labels: Vec<usize> = corpus
        .projects()
        .iter()
        .map(|p| p.assigned.ordinal())
        .collect();
    let tree = DecisionTree::fit(
        &features,
        &labels,
        &TreeConfig {
            max_depth: 4,
            min_samples_split: 4,
        },
    );
    println!(
        "decision tree: {} leaves, misclassifies {}/{n} (paper: 4/151)",
        tree.leaf_count(),
        tree.training_errors(&features, &labels)
    );
}
