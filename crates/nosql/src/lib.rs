#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-nosql
//!
//! **Implicit-schema extraction from document stores**, mapped onto the
//! relational evolution pipeline — the paper's first future-work direction
//! ("NoSQL schemata are a clear case where this method can be applied",
//! §7), following the document-schema mining approach of its ref \[34\].
//!
//! Document databases have no declared schema, but collections of JSON
//! documents carry an **implicit** one: the set of entity types, their
//! fields and the fields' types. This crate infers that implicit schema
//! ([`infer_schema`]) and maps it onto [`schemachron_model::Schema`]
//! (entity type → table, field → attribute, JSON type → data type), so a
//! document store's version history flows through the exact same
//! diff → heartbeat → metrics → pattern pipeline as a relational one —
//! letting the time-related patterns be tested for universality.
//!
//! ## Quick example
//!
//! ```
//! use schemachron_nosql::{infer_schema, Collections};
//!
//! let mut store = Collections::new();
//! store.add_json("users", r#"{"id": 1, "name": "ada", "tags": ["x"]}"#).unwrap();
//! store.add_json("users", r#"{"id": 2, "name": "bob", "email": "b@c.d"}"#).unwrap();
//!
//! let schema = infer_schema(&store);
//! let users = schema.table("users").unwrap();
//! assert_eq!(users.attribute_count(), 4); // id, name, tags, email
//! // `id`/`name` appear in every document → required:
//! assert!(users.attribute("id").unwrap().not_null);
//! // `email` is optional:
//! assert!(!users.attribute("email").unwrap().not_null);
//! ```

mod history;
mod infer;

pub use history::DocumentHistoryBuilder;
pub use infer::{infer_entity, infer_schema, Collections, JsonType, FLATTEN_DEPTH};
