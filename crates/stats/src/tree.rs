//! A CART decision tree over ordinal-coded categorical features.
//!
//! Fig. 5 of the paper separates the eight patterns with a small decision
//! tree learned *after* manual annotation, misclassifying only 4 of 151
//! projects. This module provides the learner: binary splits of the form
//! `feature ≤ level`, chosen by Gini impurity, deterministic under ties.

/// Hyper-parameters for [`DecisionTree::fit`].
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0). Depth 0 yields a single leaf.
    pub max_depth: usize,
    /// Minimum number of samples a node must hold to be split further.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 2,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        class: usize,
        count: usize,
    },
    Split {
        feature: usize,
        threshold: u8,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted CART decision tree.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree to `samples` (each a vector of ordinal feature levels)
    /// with class `labels`.
    ///
    /// # Panics
    /// Panics when `samples` is empty, lengths mismatch, or feature vectors
    /// are ragged.
    pub fn fit(samples: &[Vec<u8>], labels: &[usize], config: &TreeConfig) -> Self {
        assert!(!samples.is_empty(), "cannot fit a tree to zero samples");
        assert_eq!(
            samples.len(),
            labels.len(),
            "samples/labels length mismatch"
        );
        let n_features = samples[0].len();
        assert!(
            samples.iter().all(|s| s.len() == n_features),
            "ragged feature vectors"
        );
        let idx: Vec<usize> = (0..samples.len()).collect();
        let root = grow(samples, labels, &idx, config, 0);
        DecisionTree { root, n_features }
    }

    /// Predicts the class of one sample.
    pub fn predict(&self, sample: &[u8]) -> usize {
        assert_eq!(sample.len(), self.n_features, "wrong feature count");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if sample[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of training samples the tree misclassifies.
    pub fn training_errors(&self, samples: &[Vec<u8>], labels: &[usize]) -> usize {
        samples
            .iter()
            .zip(labels)
            .filter(|(s, &l)| self.predict(s) != l)
            .count()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => walk(left) + walk(right),
            }
        }
        walk(&self.root)
    }

    /// Maximum depth of any leaf (root = 0).
    pub fn depth(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(left).max(walk(right)),
            }
        }
        walk(&self.root)
    }

    /// Renders the tree as indented text. `feature_names[f]` names feature
    /// `f`; `value_names[f][v]` names level `v` of feature `f` (fallback to
    /// the numeric level); `class_names[c]` names class `c`.
    pub fn render(
        &self,
        feature_names: &[&str],
        value_names: &[Vec<&str>],
        class_names: &[&str],
    ) -> String {
        let mut out = String::new();
        fn level_name(value_names: &[Vec<&str>], f: usize, v: u8) -> String {
            value_names
                .get(f)
                .and_then(|vs| vs.get(v as usize))
                .map_or_else(|| v.to_string(), |s| (*s).to_owned())
        }
        fn walk(
            n: &Node,
            depth: usize,
            out: &mut String,
            fnames: &[&str],
            vnames: &[Vec<&str>],
            cnames: &[&str],
        ) {
            let pad = "  ".repeat(depth);
            match n {
                Node::Leaf { class, count } => {
                    let name = cnames.get(*class).copied().unwrap_or("?");
                    out.push_str(&format!("{pad}=> {name} ({count})\n"));
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let fname = fnames.get(*feature).copied().unwrap_or("?");
                    let tname = level_name(vnames, *feature, *threshold);
                    out.push_str(&format!("{pad}if {fname} <= {tname}:\n"));
                    walk(left, depth + 1, out, fnames, vnames, cnames);
                    out.push_str(&format!("{pad}else:\n"));
                    walk(right, depth + 1, out, fnames, vnames, cnames);
                }
            }
        }
        walk(
            &self.root,
            0,
            &mut out,
            feature_names,
            value_names,
            class_names,
        );
        out
    }
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn class_counts(labels: &[usize], idx: &[usize]) -> Vec<usize> {
    let max = idx.iter().map(|&i| labels[i]).max().unwrap_or(0);
    let mut counts = vec![0usize; max + 1];
    for &i in idx {
        counts[labels[i]] += 1;
    }
    counts
}

fn majority(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0))) // ties → lowest class
        .map(|(c, _)| c)
        .unwrap_or(0)
}

fn grow(
    samples: &[Vec<u8>],
    labels: &[usize],
    idx: &[usize],
    config: &TreeConfig,
    depth: usize,
) -> Node {
    let counts = class_counts(labels, idx);
    let node_gini = gini(&counts, idx.len());
    let leaf = || Node::Leaf {
        class: majority(&counts),
        count: idx.len(),
    };
    if node_gini == 0.0 || depth >= config.max_depth || idx.len() < config.min_samples_split {
        return leaf();
    }

    let n_features = samples[idx[0]].len();
    let mut best: Option<(f64, usize, u8)> = None; // (weighted gini, feature, threshold)
    #[allow(clippy::needless_range_loop)] // `f` indexes a column across rows
    for f in 0..n_features {
        let mut levels: Vec<u8> = idx.iter().map(|&i| samples[i][f]).collect();
        levels.sort_unstable();
        levels.dedup();
        if levels.len() < 2 {
            continue;
        }
        for &t in &levels[..levels.len() - 1] {
            let left: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| samples[i][f] <= t)
                .collect();
            let right_len = idx.len() - left.len();
            if left.is_empty() || right_len == 0 {
                continue;
            }
            let right: Vec<usize> = idx.iter().copied().filter(|&i| samples[i][f] > t).collect();
            let lg = gini(&class_counts(labels, &left), left.len());
            let rg = gini(&class_counts(labels, &right), right.len());
            let w = (left.len() as f64 * lg + right.len() as f64 * rg) / idx.len() as f64;
            let candidate = (w, f, t);
            let better = match best {
                None => true,
                Some((bw, bf, bt)) => {
                    w < bw - 1e-12 || ((w - bw).abs() <= 1e-12 && (f, t) < (bf, bt))
                }
            };
            if better {
                best = Some(candidate);
            }
        }
    }

    // Accept the best split even at zero impurity gain (like classic CART):
    // a zero-gain split can still enable purifying splits below (XOR-style
    // interactions). Recursion terminates because both children are
    // non-empty and strictly smaller, and depth is capped.
    match best {
        Some((_w, f, t)) => {
            let left_idx: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| samples[i][f] <= t)
                .collect();
            let right_idx: Vec<usize> =
                idx.iter().copied().filter(|&i| samples[i][f] > t).collect();
            Node::Split {
                feature: f,
                threshold: t,
                left: Box::new(grow(samples, labels, &left_idx, config, depth + 1)),
                right: Box::new(grow(samples, labels, &right_idx, config, depth + 1)),
            }
        }
        _ => leaf(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_node_becomes_leaf() {
        let t = DecisionTree::fit(
            &[vec![0], vec![1], vec![2]],
            &[1, 1, 1],
            &TreeConfig::default(),
        );
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.predict(&[9]), 1);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn single_threshold_split() {
        let samples = vec![vec![0], vec![1], vec![2], vec![3]];
        let labels = vec![0, 0, 1, 1];
        let t = DecisionTree::fit(&samples, &labels, &TreeConfig::default());
        assert_eq!(t.training_errors(&samples, &labels), 0);
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.predict(&[0]), 0);
        assert_eq!(t.predict(&[3]), 1);
    }

    #[test]
    fn two_feature_interaction() {
        // class = f0 AND f1 (binary features) — needs depth 2.
        let samples = vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]];
        let labels = vec![0, 0, 0, 1];
        let t = DecisionTree::fit(&samples, &labels, &TreeConfig::default());
        assert_eq!(t.training_errors(&samples, &labels), 0);
        assert!(t.depth() <= 2);
    }

    #[test]
    fn depth_limit_forces_impure_leaves() {
        let samples = vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]];
        let labels = vec![0, 1, 1, 0]; // XOR: unseparable at depth 1
        let cfg = TreeConfig {
            max_depth: 1,
            min_samples_split: 2,
        };
        let t = DecisionTree::fit(&samples, &labels, &cfg);
        assert!(t.training_errors(&samples, &labels) > 0);
        assert!(t.depth() <= 1);
    }

    #[test]
    fn xor_solvable_at_depth_two() {
        let samples = vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]];
        let labels = vec![0, 1, 1, 0];
        let t = DecisionTree::fit(&samples, &labels, &TreeConfig::default());
        assert_eq!(t.training_errors(&samples, &labels), 0);
    }

    #[test]
    fn deterministic_fit() {
        let samples: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i % 4, i % 3, i % 5]).collect();
        let labels: Vec<usize> = (0..20).map(|i| (i % 2) as usize).collect();
        let a = DecisionTree::fit(&samples, &labels, &TreeConfig::default());
        let b = DecisionTree::fit(&samples, &labels, &TreeConfig::default());
        let names: Vec<&str> = vec!["f0", "f1", "f2"];
        let vnames = vec![vec![], vec![], vec![]];
        let cnames = vec!["a", "b"];
        assert_eq!(
            a.render(&names, &vnames, &cnames),
            b.render(&names, &vnames, &cnames)
        );
    }

    #[test]
    fn render_names_features_and_classes() {
        let samples = vec![vec![0], vec![1]];
        let labels = vec![0, 1];
        let t = DecisionTree::fit(&samples, &labels, &TreeConfig::default());
        let s = t.render(&["birth"], &[vec!["v0", "early"]], &["flat", "radical"]);
        assert!(s.contains("if birth <= v0:"), "{s}");
        assert!(s.contains("=> flat (1)"));
        assert!(s.contains("=> radical (1)"));
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_fit_panics() {
        let _ = DecisionTree::fit(&[], &[], &TreeConfig::default());
    }

    #[test]
    #[should_panic(expected = "wrong feature count")]
    fn predict_wrong_arity_panics() {
        let t = DecisionTree::fit(&[vec![0], vec![1]], &[0, 1], &TreeConfig::default());
        let _ = t.predict(&[0, 0]);
    }
}
