//! The DDL abstract syntax tree.
//!
//! Only the statement forms that affect the *logical* schema level are
//! modeled structurally; everything else is preserved as
//! [`Statement::Other`] so the builder can count and report it.

use schemachron_model::{DataType, Name};

/// A parsed SQL statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE TABLE ...`
    CreateTable(CreateTable),
    /// `DROP TABLE [IF EXISTS] a, b, ...`
    DropTable {
        /// Tables to drop.
        names: Vec<Name>,
        /// Whether `IF EXISTS` was present.
        if_exists: bool,
    },
    /// `ALTER TABLE name action [, action ...]`
    AlterTable {
        /// The altered table.
        name: Name,
        /// The actions, in order.
        actions: Vec<AlterAction>,
    },
    /// `CREATE [OR REPLACE] VIEW name AS select...`
    CreateView {
        /// The view name.
        name: Name,
        /// Whether `OR REPLACE` was present.
        or_replace: bool,
        /// The raw body after `AS`.
        definition: String,
    },
    /// `DROP VIEW [IF EXISTS] a, b, ...`
    DropView {
        /// Views to drop.
        names: Vec<Name>,
    },
    /// MySQL `RENAME TABLE a TO b [, c TO d ...]`
    RenameTable {
        /// `(old, new)` pairs.
        renames: Vec<(Name, Name)>,
    },
    /// Any statement that does not touch the logical schema (e.g. `INSERT`,
    /// `SET`, `CREATE INDEX`, `CREATE FUNCTION`). The leading keyword is kept
    /// for diagnostics.
    Other {
        /// The statement's first keyword, uppercased.
        keyword: String,
    },
}

/// A parsed `CREATE TABLE`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CreateTable {
    /// The table name.
    pub name: Name,
    /// Whether `IF NOT EXISTS` was present.
    pub if_not_exists: bool,
    /// Column definitions, in order.
    pub columns: Vec<ColumnDef>,
    /// Table-level constraints.
    pub constraints: Vec<TableConstraint>,
    /// `CREATE TABLE t LIKE other` / `(LIKE other)`: copy the structure of
    /// another table (additional explicit columns, if any, are appended).
    pub like: Option<Name>,
}

impl CreateTable {
    /// An empty `CREATE TABLE` for the given name.
    pub fn new(name: impl Into<Name>) -> Self {
        CreateTable {
            name: name.into(),
            if_not_exists: false,
            columns: Vec::new(),
            constraints: Vec::new(),
            like: None,
        }
    }
}

/// A column definition (in `CREATE TABLE` or `ALTER TABLE ADD/MODIFY`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    /// The column name.
    pub name: Name,
    /// The declared type.
    pub data_type: DataType,
    /// `NOT NULL` present.
    pub not_null: bool,
    /// Raw default expression, if any.
    pub default: Option<String>,
    /// Inline `PRIMARY KEY`.
    pub primary_key: bool,
    /// Inline `UNIQUE`.
    pub unique: bool,
    /// `AUTO_INCREMENT` / `AUTOINCREMENT` / serial types.
    pub auto_increment: bool,
    /// Inline `REFERENCES table (cols)`.
    pub references: Option<(Name, Vec<Name>)>,
}

impl ColumnDef {
    /// A minimal column definition.
    pub fn new(name: impl Into<Name>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
            not_null: false,
            default: None,
            primary_key: false,
            unique: false,
            auto_increment: false,
            references: None,
        }
    }
}

/// A table-level constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableConstraint {
    /// `PRIMARY KEY (cols)`
    PrimaryKey(Vec<Name>),
    /// `UNIQUE (cols)`
    Unique(Vec<Name>),
    /// `FOREIGN KEY (cols) REFERENCES t (cols)`
    ForeignKey {
        /// Optional constraint name.
        name: Option<Name>,
        /// Referencing columns.
        columns: Vec<Name>,
        /// Referenced table.
        ref_table: Name,
        /// Referenced columns (empty = referenced table's PK).
        ref_columns: Vec<Name>,
    },
    /// `CHECK (expr)` — expression kept as raw text.
    Check(String),
}

/// One action inside an `ALTER TABLE`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlterAction {
    /// `ADD [COLUMN] def [FIRST | AFTER col]`
    AddColumn {
        /// The new column.
        def: ColumnDef,
        /// Position hint: `None` = append, `Some(None)` = first,
        /// `Some(Some(c))` = after column `c`.
        position: Option<Option<Name>>,
    },
    /// `DROP [COLUMN] name`
    DropColumn(Name),
    /// `MODIFY [COLUMN] def` (MySQL) — full redefinition, same name.
    ModifyColumn(ColumnDef),
    /// `CHANGE [COLUMN] old def` (MySQL) — redefinition with rename.
    ChangeColumn {
        /// The column's previous name.
        old: Name,
        /// The full new definition (carries the new name).
        def: ColumnDef,
    },
    /// `ALTER COLUMN c TYPE t` (PostgreSQL) / `ALTER COLUMN c SET DATA TYPE t`
    AlterColumnType {
        /// The column.
        name: Name,
        /// The new type.
        data_type: DataType,
    },
    /// `ALTER COLUMN c SET DEFAULT expr` / `DROP DEFAULT`
    AlterColumnDefault {
        /// The column.
        name: Name,
        /// New default (None = drop).
        default: Option<String>,
    },
    /// `ALTER COLUMN c SET NOT NULL` / `DROP NOT NULL`
    AlterColumnNull {
        /// The column.
        name: Name,
        /// Whether the column is NOT NULL after the action.
        not_null: bool,
    },
    /// `ADD [CONSTRAINT name] <table constraint>`
    AddConstraint(TableConstraint),
    /// `DROP PRIMARY KEY` (MySQL)
    DropPrimaryKey,
    /// `DROP FOREIGN KEY name` (MySQL)
    DropForeignKey(Name),
    /// `DROP CONSTRAINT name` (standard)
    DropConstraint(Name),
    /// `RENAME TO t` / `RENAME AS t`
    RenameTable(Name),
    /// `RENAME [COLUMN] a TO b`
    RenameColumn {
        /// Previous name.
        old: Name,
        /// New name.
        new: Name,
    },
    /// An unrecognized action, skipped tolerantly (kept for diagnostics).
    Other(String),
}
