--
-- PostgreSQL database dump
--
SET statement_timeout = 0;
SET client_encoding = 'UTF8';
SELECT pg_catalog.set_config('search_path', '', false);

CREATE TABLE public.projects (
    id bigserial PRIMARY KEY,
    slug character varying(80) NOT NULL UNIQUE,
    name text NOT NULL,
    created_at timestamp with time zone DEFAULT now() NOT NULL,
    settings jsonb DEFAULT '{}'::jsonb,
    tags text[]
);

CREATE TABLE public.issues (
    id bigserial NOT NULL,
    project_id bigint NOT NULL,
    title character varying(500) NOT NULL,
    state character varying(16) DEFAULT 'open'::character varying,
    weight double precision,
    opened_at timestamp without time zone,
    CONSTRAINT issues_pkey PRIMARY KEY (id),
    CONSTRAINT fk_project FOREIGN KEY (project_id) REFERENCES public.projects (id) ON DELETE CASCADE DEFERRABLE INITIALLY DEFERRED,
    CONSTRAINT positive_weight CHECK (weight > 0)
);

CREATE INDEX idx_issues_state ON public.issues (state);
CREATE SEQUENCE public.audit_seq START WITH 1;

CREATE OR REPLACE FUNCTION public.touch() RETURNS trigger AS $fn$
BEGIN
  NEW.updated_at = now(); RETURN NEW;
END;
$fn$ LANGUAGE plpgsql;

CREATE VIEW public.open_issues AS
  SELECT i.id, i.title FROM public.issues i WHERE i.state = 'open';

ALTER TABLE public.issues ADD COLUMN updated_at timestamp with time zone;
ALTER TABLE ONLY public.issues ALTER COLUMN state SET DEFAULT 'triage';
