//! Human and JSON renderers for safety analyses.
//!
//! Mirroring the as-of and plan renderers, the analyzer returns plain data
//! and this module owns presentation. Both the CLI `safety` command and
//! the serve `GET /project/{id}/safety` route call these functions, so a
//! CLI golden and a `curl` response for the same project are byte-identical
//! JSON.

use serde_json::{json, Value};

use crate::analyze::{OpSafety, SafetyAnalysis};
use crate::classify::Safety;

fn op_json(op: &OpSafety) -> Value {
    json!({
        "op": (op.op.clone()),
        "class": (op.safety.tag()),
        "reason": (op.reason.clone()),
        "line": (op.line.map_or(Value::Null, |l| json!(l))),
        "inverse": (op.inverse.clone().map_or(Value::Null, |batch| json!(batch))),
        "inverted": (op.inverted),
    })
}

/// The JSON form of a safety analysis — one shape for CLI and serve.
pub fn safety_json(a: &SafetyAnalysis) -> Value {
    let [lossless, recoverable, lossy] = a.counts();
    let transitions: Vec<Value> = a
        .transitions
        .iter()
        .map(|t| {
            json!({
                "script": (t.script.clone()),
                "date": (t.date.clone()),
                "ops": (t.ops.iter().map(op_json).collect::<Vec<Value>>()),
            })
        })
        .collect();
    json!({
        "project": (a.project.clone()),
        "versions": (a.versions),
        "ops": (a.total_ops()),
        "summary": {
            "lossless": lossless,
            "recoverable": recoverable,
            "lossy": lossy,
            "worst": (a.worst().tag()),
        },
        "lineage": {
            "columns": (a.lineage.columns),
            "renames": (a.lineage.renames),
            "type_changes": (a.lineage.type_changes),
            "surviving": (a.lineage.surviving),
        },
        "transitions": transitions,
    })
}

/// The human form: a summary header, the lineage line, then every
/// non-lossless op with its span and grounds.
pub fn safety_human(a: &SafetyAnalysis) -> String {
    let [lossless, recoverable, lossy] = a.counts();
    let mut out = format!(
        "{} safety: {} ops over {} versions — {} lossless, {} recoverable, {} lossy (worst: {})\n",
        a.project,
        a.total_ops(),
        a.versions,
        lossless,
        recoverable,
        lossy,
        a.worst().tag(),
    );
    out.push_str(&format!(
        "lineage: {} columns, {} renames, {} type changes, {} surviving\n",
        a.lineage.columns, a.lineage.renames, a.lineage.type_changes, a.lineage.surviving,
    ));
    let mut flagged = 0usize;
    for t in &a.transitions {
        for op in t.ops.iter().filter(|o| o.safety != Safety::Lossless) {
            flagged += 1;
            let anchor = op.line.map_or_else(
                || t.script.clone(),
                |line| format!("{}:{line}", t.script),
            );
            out.push_str(&format!(
                "  [{}] {} at {} — {}\n",
                op.safety.tag(),
                op.op,
                anchor,
                op.reason,
            ));
        }
    }
    if flagged == 0 {
        out.push_str("  every op is lossless; the whole history is invertible from schema alone\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use schemachron_history::Date;

    fn demo() -> SafetyAnalysis {
        analyze(
            "demo",
            &[
                (
                    Date::new(2020, 1, 1),
                    "CREATE TABLE t (a INT, b VARCHAR(64));".to_owned(),
                ),
                (
                    Date::new(2020, 2, 1),
                    "ALTER TABLE t DROP COLUMN b;".to_owned(),
                ),
            ],
        )
    }

    #[test]
    fn json_carries_every_classified_op() {
        let a = demo();
        let v = safety_json(&a);
        let text = serde_json::to_string_pretty(&v).expect("renderable");
        assert!(text.contains("\"drop_column t.b\""), "{text}");
        assert!(text.contains("\"lossy\""), "{text}");
        assert!(text.contains("\"transitions\""), "{text}");
    }

    #[test]
    fn human_flags_only_non_lossless_ops() {
        let a = demo();
        let text = safety_human(&a);
        assert!(text.contains("[lossy] drop_column t.b at 0002_2020-02-01.sql:1"), "{text}");
        assert!(!text.contains("create_table"), "{text}");
    }
}
