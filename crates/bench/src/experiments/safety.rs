//! Beyond the paper: per-pattern data-loss exposure — how much of each
//! evolution pattern's migration churn is destructive, as judged by the
//! `schemachron-safety` abstract interpreter's three-valued lattice.
//!
//! The paper's "focused shot and frozen" narrative (its Be Quick or Be Dead
//! family) predicts that frozen histories concentrate their churn in one
//! constructive burst at birth, while actively maintained histories keep
//! dropping and reshaping — so the *share* of lossy ops should differ
//! between the families. This experiment measures exactly that.

use serde::Serialize;

use schemachron_core::{Family, Pattern};
use schemachron_safety::analyze_history;
use schemachron_stats::{mann_whitney_u, median};

use crate::context::ExpContext;
use crate::report::{cell, pct, text_table};

/// Corpus-wide data-loss exposure census.
#[derive(Clone, Debug, Serialize)]
pub struct SafetyExp {
    /// Classified migration ops across all 151 histories.
    pub total_ops: usize,
    /// `[lossless, recoverable, lossy]` counts over the whole corpus.
    pub counts: [usize; 3],
    /// Per-pattern `(pattern, ops, [lossless, recoverable, lossy],
    /// exposure)` rows; *exposure* is the lossy share of the pattern's ops.
    pub per_pattern: Vec<(Pattern, usize, [usize; 3], f64)>,
    /// Frozen-vs-active family split of per-project exposure.
    pub family_split: FamilySplit,
}

/// Per-project exposure split between the paper's frozen family (Be Quick
/// or Be Dead — focused shot, then frozen) and the actively maintained
/// rest.
#[derive(Clone, Debug, Serialize)]
pub struct FamilySplit {
    /// Projects in the frozen (Be Quick or Be Dead) family.
    pub frozen_projects: usize,
    /// Projects in the two actively maintained families.
    pub active_projects: usize,
    /// Median per-project lossy share among frozen projects.
    pub frozen_median_exposure: f64,
    /// Median per-project lossy share among active projects.
    pub active_median_exposure: f64,
    /// Two-sided Mann–Whitney p of the exposure distributions (`None`
    /// when a side is empty or degenerate).
    pub p_value: Option<f64>,
}

/// Runs the safety analyzer over every corpus history and aggregates the
/// lattice verdicts per pattern and per family.
pub fn safety_exp(ctx: &ExpContext) -> SafetyExp {
    let mut total_ops = 0;
    let mut counts = [0usize; 3];
    let mut per_pattern = Vec::new();
    let mut frozen: Vec<f64> = Vec::new();
    let mut active: Vec<f64> = Vec::new();

    for pattern in Pattern::ALL {
        let mut p_ops = 0;
        let mut p_counts = [0usize; 3];
        for project in ctx.corpus.of_pattern(pattern) {
            let history = project
                .history
                .schema_history()
                .expect("corpus projects are DDL-built");
            let analysis = analyze_history(&project.card.name, history);
            p_ops += analysis.total_ops();
            let c = analysis.counts();
            for (acc, n) in p_counts.iter_mut().zip(c) {
                *acc += n;
            }
            if pattern.family() == Family::BeQuickOrBeDead {
                frozen.push(analysis.exposure());
            } else {
                active.push(analysis.exposure());
            }
        }
        let exposure = if p_ops == 0 {
            0.0
        } else {
            p_counts[2] as f64 / p_ops as f64
        };
        total_ops += p_ops;
        for (acc, n) in counts.iter_mut().zip(p_counts) {
            *acc += n;
        }
        per_pattern.push((pattern, p_ops, p_counts, exposure));
    }

    let p_value = mann_whitney_u(&frozen, &active).ok().map(|r| r.p_value);
    SafetyExp {
        total_ops,
        counts,
        per_pattern,
        family_split: FamilySplit {
            frozen_projects: frozen.len(),
            active_projects: active.len(),
            frozen_median_exposure: median(&frozen),
            active_median_exposure: median(&active),
            p_value,
        },
    }
}

impl SafetyExp {
    /// Renders the exposure census.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Safety — per-pattern data-loss exposure (beyond the paper)\n\n\
             classified migration ops: {}\n\
             lossless: {} ({:.0}%), recoverable: {} ({:.0}%), lossy: {} ({:.0}%)\n\n",
            self.total_ops,
            self.counts[0],
            100.0 * self.counts[0] as f64 / self.total_ops.max(1) as f64,
            self.counts[1],
            100.0 * self.counts[1] as f64 / self.total_ops.max(1) as f64,
            self.counts[2],
            100.0 * self.counts[2] as f64 / self.total_ops.max(1) as f64,
        );
        let header = vec![
            cell("Pattern"),
            cell("ops"),
            cell("lossless"),
            cell("recoverable"),
            cell("lossy"),
            cell("exposure"),
        ];
        let rows: Vec<Vec<String>> = self
            .per_pattern
            .iter()
            .map(|(p, ops, c, e)| {
                vec![
                    cell(p.name()),
                    cell(ops),
                    cell(c[0]),
                    cell(c[1]),
                    cell(c[2]),
                    pct(*e),
                ]
            })
            .collect();
        out.push_str(&text_table(&header, &rows));
        let f = &self.family_split;
        out.push_str(&format!(
            "\nfamily split: {} frozen projects (median exposure {}) vs \
             {} active (median {}), Mann-Whitney p = {}\n",
            f.frozen_projects,
            pct(f.frozen_median_exposure),
            f.active_projects,
            pct(f.active_median_exposure),
            f.p_value
                .map_or_else(|| "n/a".to_owned(), |p| format!("{p:.2e}")),
        ));
        out
    }
}
