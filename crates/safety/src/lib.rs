#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-safety
//!
//! Static safety analysis for schema migrations: an abstract interpreter
//! over DDL histories and migration plans that answers, **before anything
//! executes**, two questions about every [`DiffOp`]:
//!
//! 1. *Can it destroy data?* Every op is classified into a three-valued
//!    lattice ([`Safety`]): `Lossless` (invertible from the schema alone),
//!    `Recoverable` (invertible given provenance — e.g. a narrowing cast
//!    whose truncated values are parked in a side table), or `Lossy`
//!    (drops with no inverse).
//! 2. *Can it be undone?* For every non-`Lossy` op the analyzer
//!    synthesizes the inverse `DiffOp` batch ([`invert`]) and
//!    machine-checks it by replay: applying the op and then its inverse
//!    must reproduce the pre-state's normalized schema fingerprint.
//!
//! The interpreter additionally tracks **column-level lineage**
//! ([`lineage`]) through renames (a drop paired with a same-typed add),
//! type changes, and table rebuilds, which is what lets a rename-shaped
//! `drop_column` be reclassified from `Lossy` to `Recoverable`.
//!
//! Analyses are pure functions of a project's dated DDL commits. The
//! [`cached`] module memoizes them in the process-wide stage cache under
//! the `safety` namespace, keyed by a chain from the project's history
//! stage key and [`SAFETY_LOGIC_VERSION`] — audited independently by the
//! lint H-pass. [`render`] provides the single human/JSON shape shared
//! byte-for-byte by the CLI `safety` command and the serve
//! `GET /project/{id}/safety` route.
//!
//! [`DiffOp`]: schemachron_dialect::DiffOp

pub mod analyze;
pub mod cached;
pub mod classify;
pub mod invert;
pub mod lineage;
pub mod locate;
pub mod render;

pub use analyze::{analyze, analyze_history, OpSafety, SafetyAnalysis, Transition};
pub use cached::{safety_for, safety_key, SafetyArtifact, SAFETY_LOGIC_VERSION, SAFETY_STAGE};
pub use classify::{classify_op, classify_plan, Classification, PlanSafety, Safety};
pub use invert::{apply_op, fingerprint, inverse_matches_class, inverse_op};
pub use lineage::{column_lineage, ColumnRecord, LineageSummary};
