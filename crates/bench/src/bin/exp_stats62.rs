//! Regenerates the §6.2 rigidity probabilities.

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::stats62(&ctx);
    emit(
        "exp_stats62",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
