//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Implements exactly the subset the service needs: a request line, headers
//! (only `Content-Length` is interpreted), and guarded limits — oversized
//! heads or declared bodies are rejected with `413` before any route code
//! runs, and a stalled client trips the socket read timeout into `408`.
//! Every connection carries one request and is closed after the response
//! (`Connection: close`), which keeps the worker pool's accounting trivial.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a declared request body. The service is read-only, so any
/// larger payload is rejected outright.
pub const MAX_BODY_BYTES: usize = 64 * 1024;
/// Socket read timeout: a client that stalls mid-request gets `408`.
pub const READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Socket write timeout: a client that stops draining gets dropped.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// How long [`finish`] waits for the peer to close after the response.
pub const DRAIN_TIMEOUT: Duration = Duration::from_millis(250);

/// Politely finishes a connection after the response has been written:
/// half-closes the write side so the peer sees EOF, then reads and discards
/// anything the client sent that was never consumed (unparsed body, bytes
/// past [`MAX_HEAD_BYTES`], a request bounced with `503`). Closing a socket
/// with unread bytes makes the kernel send `RST`, which can destroy the
/// response that was just written; draining first guarantees a clean `FIN`.
pub fn finish(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(DRAIN_TIMEOUT));
    let mut scratch = [0u8; 4096];
    let mut budget = MAX_HEAD_BYTES + MAX_BODY_BYTES;
    while let Ok(n) = stream.read(&mut scratch) {
        if n == 0 || budget <= n {
            break;
        }
        budget -= n;
    }
}

/// A parsed request: method, decoded path segments, query pairs, headers
/// and (for mutating methods) the body.
#[derive(Clone, Debug)]
pub struct Request {
    /// The HTTP method verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The raw request target (path + query), for logging.
    pub target: String,
    /// Percent-decoded path, always starting with `/`.
    pub path: String,
    /// Percent-decoded `key=value` query pairs, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs, names lowercased, in order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` declared one).
    pub body: Vec<u8>,
}

impl Request {
    /// A bodiless `GET` for the given target — the in-process construction
    /// used by tests, cache warming and the chaos drill.
    pub fn get(target: &str) -> Request {
        let (path, query) = target.split_once('?').unwrap_or((target, ""));
        Request {
            method: "GET".to_owned(),
            target: target.to_owned(),
            path: percent_decode(path),
            query: query
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(kv), String::new()),
                })
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `POST` for the given target with a JSON body (in-process tests).
    pub fn post_json(target: &str, body: &str) -> Request {
        let mut req = Request::get(target);
        req.method = "POST".to_owned();
        req.headers
            .push(("content-type".to_owned(), "application/json".to_owned()));
        req.body = body.as_bytes().to_vec();
        req
    }

    /// The first value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The first value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; maps 1:1 onto an error [`Response`].
#[derive(Debug)]
pub enum HttpError {
    /// The bytes do not form an HTTP/1.x request.
    Malformed(&'static str),
    /// The head or declared body exceeds the configured limits.
    TooLarge,
    /// The client stalled past [`READ_TIMEOUT`].
    Timeout,
    /// The connection died mid-request.
    Io(std::io::Error),
}

impl HttpError {
    /// The error as a JSON response.
    pub fn response(&self) -> Response {
        match self {
            HttpError::Malformed(why) => Response::json(
                400,
                &serde_json::json!({"error": "malformed request", "detail": (*why)}),
            ),
            HttpError::TooLarge => Response::json(
                413,
                &serde_json::json!({
                    "error": "request too large",
                    "max_head_bytes": MAX_HEAD_BYTES,
                    "max_body_bytes": MAX_BODY_BYTES,
                }),
            ),
            HttpError::Timeout => {
                Response::json(408, &serde_json::json!({"error": "request timeout"}))
            }
            HttpError::Io(_) => Response::json(
                400,
                &serde_json::json!({"error": "connection error"}),
            ),
        }
    }
}

/// Reads and parses one request from `stream` (which should already have
/// its read timeout set): the head, then — when `Content-Length` declares
/// one — the body, capped at [`MAX_BODY_BYTES`].
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let n = stream.read(&mut chunk).map_err(|e| match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        })?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed before head end"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed("request line needs METHOD TARGET VERSION"));
    };
    if parts.next().is_some() || method.is_empty() || !target.starts_with('/') {
        return Err(HttpError::Malformed("bad request line shape"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("only HTTP/1.x is spoken here"));
    }
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: usize = 0;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed("unparsable Content-Length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(HttpError::TooLarge);
            }
        }
        headers.push((name, value));
    }

    // The body: whatever followed the head in the buffer, then the rest
    // read off the socket up to the declared length.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    body.truncate(content_length);
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        })?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed before body end"));
        }
        let want = content_length - body.len();
        body.extend_from_slice(&chunk[..n.min(want)]);
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = raw_query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    Ok(Request {
        method: method.to_owned(),
        target: target.to_owned(),
        path: percent_decode(raw_path),
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decodes `%XX` escapes and `+`-as-space; invalid escapes pass through.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => match bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
            {
                Some(b) => {
                    out.push(b);
                    i += 2;
                }
                None => out.push(b'%'),
            },
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response ready to serialize onto the wire.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `Allow` on 405), emitted in order.
    pub headers: Vec<(&'static str, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A pretty-printed JSON response.
    pub fn json(status: u16, value: &serde_json::Value) -> Response {
        let mut body = serde_json::to_string_pretty(value)
            .unwrap_or_else(|_| "{}".to_owned())
            .into_bytes();
        body.push(b'\n');
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    /// An SVG response.
    pub fn svg(document: String) -> Response {
        Response {
            status: 200,
            content_type: "image/svg+xml",
            headers: Vec::new(),
            body: document.into_bytes(),
        }
    }

    /// A Server-Sent Events batch (the service answers one bounded batch
    /// per connection, so the stream still carries `Content-Length`).
    pub fn sse(frames: String) -> Response {
        Response {
            status: 200,
            content_type: "text/event-stream",
            headers: Vec::new(),
            body: frames.into_bytes(),
        }
    }

    /// Returns the response with an extra header attached.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// The first extra header with the given name, if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Content",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Writes the response (head + body) to `w`.
    pub fn write_to(&self, w: &mut dyn Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nServer: schemachron-serve\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"Connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%2"), "bad%2");
        assert_eq!(percent_decode("%41%621"), "Ab1");
    }

    #[test]
    fn response_serializes_with_length() {
        let r = Response::json(404, &serde_json::json!({"error": "x"}));
        let mut out = Vec::new();
        r.write_to(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 404 Not Found\r\n"), "{s}");
        assert!(s.contains("Content-Type: application/json"), "{s}");
        assert!(s.contains(&format!("Content-Length: {}", r.body.len())), "{s}");
        assert!(s.ends_with("\"error\": \"x\"\n}\n"), "{s}");
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}
