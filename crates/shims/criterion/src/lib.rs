#![forbid(unsafe_code)]

//! In-tree stand-in for `criterion`.
//!
//! A wall-clock micro-benchmark harness exposing the same surface the
//! workspace benches use: [`Criterion::bench_function`], benchmark groups
//! with [`Throughput`] and sample-size control, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the `criterion_group!` /
//! `criterion_main!` macros. The build environment is offline, so the
//! statistical machinery of real criterion (bootstrap CIs, HTML reports)
//! is replaced by a median-of-samples timer that prints one line per
//! benchmark — enough for `cargo bench` to run and for relative
//! comparisons on the same machine.
//!
//! Sample counts are intentionally small; benches must stay fast enough
//! for CI smoke runs. Under `cargo test` (which compiles benches with
//! `--test`), the harness detects the `--test` flag style invocation by
//! running each benchmark only once.

use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 10;

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last run, for reporting.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, repeating it enough to get stable medians.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            times.push(start.elapsed());
            std::hint::black_box(&out);
        }
        self.elapsed = median(&mut times);
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            times.push(start.elapsed());
            std::hint::black_box(&out);
        }
        self.elapsed = median(&mut times);
    }
}

fn median(times: &mut [Duration]) -> Duration {
    times.sort_unstable();
    times[times.len() / 2]
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the stand-in always
/// uses one input per measurement, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation: lets a group report elements or bytes per second.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// The benchmark manager.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark and prints its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&id, b.elapsed, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix, sample size, and
/// throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&id, b.elapsed, self.throughput);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

fn report(id: &str, elapsed: Duration, throughput: Option<Throughput>) {
    let per_sec = |count: u64| {
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            count as f64 / secs
        } else {
            f64::INFINITY
        }
    };
    match throughput {
        Some(Throughput::Bytes(n)) => println!(
            "bench: {id:<48} {elapsed:>12?}  {:.1} MiB/s",
            per_sec(n) / (1024.0 * 1024.0)
        ),
        Some(Throughput::Elements(n)) => {
            println!("bench: {id:<48} {elapsed:>12?}  {:.1} elem/s", per_sec(n))
        }
        None => println!("bench: {id:<48} {elapsed:>12?}"),
    }
}

/// Declares a benchmark group function, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_routine() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran >= DEFAULT_SAMPLES as u32);
    }

    #[test]
    fn group_controls_apply() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024)).sample_size(3);
        let mut ran = 0u32;
        g.bench_function("inner", |b| {
            b.iter_batched(|| 7u32, |x| ran += x, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(ran, 21);
    }
}
