#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-dialect
//!
//! The SQL dialect abstraction and the **forward migration planner**: the
//! inverse of the reproduction's measurement direction.
//!
//! The rest of the workspace *mines* histories of applied migrations; this
//! crate synthesizes them. Given two logical
//! [`Schema`](schemachron_model::Schema) versions, [`plan`] emits the DDL
//! script that evolves the first into the second — the "Automatic
//! Recommendations for Evolving Relational Databases Schema" direction — in
//! any of three SQL dialects.
//!
//! ## The split
//!
//! * The **dialect-neutral core** ([`ops`]) inverts the diff engine: it
//!   compares two schemas and emits an ordered batch of [`DiffOp`]s —
//!   logical migration operations with full payloads, ordered so that the
//!   resulting script replays cleanly (creations in foreign-key dependency
//!   order, alterations before drops, referencing tables dropped before
//!   their targets).
//! * Each [`Dialect`] owns what is genuinely dialect-specific: statement
//!   **parsing** (delegating lexing to the shared tolerant parser),
//!   **type normalization** ([`Dialect::normalize_type`]) and **statement
//!   rendering** ([`Dialect::render_op`]). An op a dialect cannot express
//!   comes back as a typed [`UnsupportedDiffOp`] — never a panic, never a
//!   stringly error.
//! * The **planner** ([`plan`]) drives the two: it renders the op batch,
//!   falls back to a whole-table rebuild (`DROP TABLE` + `CREATE TABLE`)
//!   when a dialect refuses an in-place alteration (SQLite has no `ALTER
//!   COLUMN`), and then **verifies its own output** by replaying the
//!   rendered script through the dialect's parser and comparing the result
//!   against the (dialect-normalized) target schema. A plan that does not
//!   replay to its target is never returned.
//!
//! ## Round trip
//!
//! The planner closes the loop that makes the corpus self-verifying:
//!
//! ```text
//! parse ──▶ Schema v1 ──diff──▶ DiffOps ──plan──▶ DDL ──parse──▶ Schema v2
//! ```
//!
//! `parse → diff → plan → parse ≡ identity` holds for every generated
//! corpus transition under all three dialects (a workspace property test
//! sweeps every seed-42 project and every adjacent month pair).
//!
//! ## Extending
//!
//! New dialects implement [`Dialect`] and register in
//! [`dialect_named`]. Only `render_op` is mandatory work: parsing and
//! normalization have tolerant defaults, and the planner's rebuild fallback
//! plus replay verification come for free.

pub mod ops;
pub mod plan;
pub mod report;

mod dialects;

pub use dialects::{
    all_dialects, dialect_named, ingest_dialect, refusal_hint, Dialect, Mysql, Postgres, Sqlite,
    DIALECT_KEYWORDS,
};
pub use ops::{diff_ops, DiffOp};
pub use plan::{
    plan, MigrationPlan, PlanError, PlanOptions, PlannedStatement, UnsupportedDiffOp,
    PLAN_LOGIC_VERSION,
};
