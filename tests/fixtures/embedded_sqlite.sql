PRAGMA foreign_keys=OFF;
BEGIN TRANSACTION;
CREATE TABLE IF NOT EXISTS "meta" (key TEXT PRIMARY KEY, value TEXT);
CREATE TABLE contacts (
  id INTEGER PRIMARY KEY AUTOINCREMENT,
  name TEXT NOT NULL COLLATE NOCASE,
  phone TEXT,
  starred BOOLEAN DEFAULT 0 CHECK (starred IN (0, 1)),
  created INTEGER DEFAULT (strftime('%s','now'))
);
CREATE TABLE call_log (
  id INTEGER PRIMARY KEY,
  contact_id INTEGER REFERENCES contacts(id) ON DELETE SET NULL,
  duration REAL,
  at TEXT
);
CREATE INDEX idx_log_contact ON call_log (contact_id);
CREATE TRIGGER trg AFTER INSERT ON call_log BEGIN UPDATE meta SET value = 'x' WHERE key = 'last'; END;
INSERT INTO meta VALUES ('version', '3');
COMMIT;
