//! Corpus assembly: cards → DDL → pipeline → annotated projects.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use schemachron_core::metrics::TimeMetrics;
use schemachron_core::quantize::Labels;
use schemachron_core::Pattern;
use schemachron_history::ProjectHistory;

use crate::cards::all_cards;
use crate::parallel::{effective_jobs, par_map_isolated, WorkerFailures};
use crate::pipeline;
use crate::spec::Card;

/// Number of corpora built by this process, across all generation entry
/// points. Observable via [`Corpus::build_count`]; the experiment runner
/// asserts on it to prove its corpus cache builds the corpus exactly once.
static BUILD_COUNT: AtomicU64 = AtomicU64::new(0);

/// One corpus project after full-pipeline ingestion.
#[derive(Clone, Debug)]
pub struct CorpusProject {
    /// The generating card (plan + ground-truth annotation).
    pub card: Card,
    /// The manually-assigned pattern (the corpus ground truth).
    pub assigned: Pattern,
    /// Whether the project is a Table 2 exception.
    pub exception: bool,
    /// The measured project history (built from the materialized DDL).
    /// Shared with the stage cache: cached rebuilds hand out the same
    /// allocation instead of deep-cloning every schema version.
    pub history: Arc<ProjectHistory>,
    /// The measured §3.2 time metrics.
    pub metrics: TimeMetrics,
    /// The measured §3.3 quantized labels.
    pub labels: Labels,
}

/// The full 151-project corpus.
#[derive(Clone, Debug)]
pub struct Corpus {
    seed: u64,
    projects: Vec<CorpusProject>,
}

/// The compact per-project result of a streaming build: everything the
/// distribution checks (Fig. 4/6/7 populations, Table 1 marginals, Table 2
/// exceptions) and the throughput benches need, without the project
/// history. A summary is ~100 bytes where a [`CorpusProject`] retains every
/// monthly schema snapshot — the difference between a 151k-project scale
/// run fitting comfortably in memory or not.
#[derive(Clone, Debug, PartialEq)]
pub struct ProjectSummary {
    /// Project name (unique within the corpus).
    pub name: String,
    /// The manually-assigned pattern (the corpus ground truth).
    pub assigned: Pattern,
    /// Whether the project is a Table 2 exception.
    pub exception: bool,
    /// The measured §3.3 quantized labels.
    pub labels: Labels,
    /// Absolute birth month (the Fig. 7 bucket input).
    pub birth_index: usize,
    /// The strict §4 classification of the measured labels.
    pub strict: Option<Pattern>,
}

impl ProjectSummary {
    fn of(p: &CorpusProject) -> ProjectSummary {
        ProjectSummary {
            name: p.card.name.clone(),
            assigned: p.assigned,
            exception: p.exception,
            labels: p.labels,
            birth_index: p.metrics.birth_index,
            strict: schemachron_core::classify(&p.labels),
        }
    }
}

/// Ingests every card through the staged pipeline — same fan-out, same
/// stage cache, same per-project compute as [`Corpus::from_cards`] — but
/// returns only compact [`ProjectSummary`] rows instead of retaining full
/// histories. The streaming entry point for 10^4–10^5-project scale runs:
/// peak memory is bounded by the stage cache's capacity plus the summaries,
/// not by the corpus size.
///
/// # Errors
/// Returns [`WorkerFailures`] when any project's ingestion panicked past
/// retry, exactly like [`Corpus::try_from_cards`].
pub fn summarize_cards(
    cards: Vec<Card>,
    seed: u64,
    jobs: usize,
) -> Result<Vec<ProjectSummary>, WorkerFailures> {
    BUILD_COUNT.fetch_add(1, Ordering::Relaxed);
    par_map_isolated(cards, jobs, |card| {
        ProjectSummary::of(&pipeline::build_project(&card, seed))
    })
    .into_result()
}

impl Corpus {
    /// Generates the corpus for a seed. The timing skeleton of every project
    /// is seed-independent (it comes from the cards); the seed only varies
    /// DDL mixture, identifiers and source-line volumes.
    ///
    /// The default seed used throughout the experiments is **42**.
    ///
    /// Ingestion fans out over worker threads (see [`crate::parallel`]);
    /// the output is identical to a serial run because each project is
    /// seeded independently and results are reassembled in card order.
    pub fn generate(seed: u64) -> Corpus {
        Self::generate_jobs(seed, effective_jobs())
    }

    /// [`Corpus::generate`] with an explicit worker count.
    pub fn generate_jobs(seed: u64, jobs: usize) -> Corpus {
        Self::from_cards(all_cards(), seed, jobs)
    }

    /// Generates a corpus of arbitrary size by cycling the 151 calibrated
    /// cards under fresh names: project `i` reuses card `i % 151` but gets
    /// its own DDL mixture (the materializer seeds per project name).
    /// Intended for scale/throughput benchmarking; the calibrated aggregates
    /// hold per 151-card cycle.
    pub fn generate_scaled(seed: u64, size: usize) -> Corpus {
        Self::generate_scaled_jobs(seed, size, effective_jobs())
    }

    /// [`Corpus::generate_scaled`] with an explicit worker count.
    pub fn generate_scaled_jobs(seed: u64, size: usize, jobs: usize) -> Corpus {
        Self::from_cards(crate::cards::scaled_cards(size), seed, jobs)
    }

    /// Generates the stratified corpus at `scale`: `scale` complete cycles
    /// of the 151 calibrated cards (`scale × 151` projects), preserving the
    /// paper's joint label distribution exactly (see
    /// [`crate::cards::stratified_cards`]). This is the `--scale` mode of
    /// the CLI build paths and the scale axis of the parallel-ingestion
    /// bench.
    pub fn generate_stratified(seed: u64, scale: usize) -> Corpus {
        Self::generate_stratified_jobs(seed, scale, effective_jobs())
    }

    /// [`Corpus::generate_stratified`] with an explicit worker count.
    pub fn generate_stratified_jobs(seed: u64, scale: usize, jobs: usize) -> Corpus {
        Self::from_cards(crate::cards::stratified_cards(scale), seed, jobs)
    }

    /// Generates a corpus from freshly synthesized random cards with the
    /// requested pattern mix (`counts[i]` projects of `Pattern::ALL[i]`) —
    /// the workload-generator entry point for what-if studies.
    pub fn generate_random(seed: u64, counts: [usize; 8]) -> Corpus {
        Self::generate_random_jobs(seed, counts, effective_jobs())
    }

    /// [`Corpus::generate_random`] with an explicit worker count.
    pub fn generate_random_jobs(seed: u64, counts: [usize; 8], jobs: usize) -> Corpus {
        Self::from_cards(crate::random::random_cards(seed, counts), seed, jobs)
    }

    /// Builds a corpus from an explicit card list — the entry point every
    /// `generate*` constructor funnels into, public for benches and tools
    /// that assemble their own card sets.
    ///
    /// Each card is ingested through the staged pipeline
    /// ([`crate::pipeline`]): projects whose full stage chain is already
    /// cached are assembled from cached artifacts; everything else fans out
    /// over `jobs` workers (see [`crate::parallel`]). The result is
    /// identical for any worker count and any cache state.
    /// # Panics
    /// Panics if any project's ingestion panics; [`Corpus::try_from_cards`]
    /// surfaces that as a typed error instead.
    pub fn from_cards(cards: Vec<Card>, seed: u64, jobs: usize) -> Corpus {
        match Self::try_from_cards(cards, seed, jobs) {
            Ok(c) => c,
            Err(failures) => panic!("corpus build: {failures}"),
        }
    }

    /// [`Corpus::from_cards`] with worker failures surfaced as a typed
    /// error: a panicking project (a bug, or an injected fault that
    /// exhausted its retries) costs only its own slot — every other
    /// project still ingests, and the aggregated [`WorkerFailures`] names
    /// exactly which cards were lost.
    ///
    /// # Errors
    /// Returns [`WorkerFailures`] when any project's ingestion panicked
    /// past retry.
    pub fn try_from_cards(
        cards: Vec<Card>,
        seed: u64,
        jobs: usize,
    ) -> Result<Corpus, WorkerFailures> {
        BUILD_COUNT.fetch_add(1, Ordering::Relaxed);
        let projects = par_map_isolated(cards, jobs, |card| pipeline::build_project(&card, seed))
            .into_result()?;
        Ok(Corpus { seed, projects })
    }

    /// How many corpora this process has built so far (any entry point) —
    /// lets callers with a corpus cache assert the cache actually hit.
    pub fn build_count() -> u64 {
        BUILD_COUNT.load(Ordering::Relaxed)
    }

    /// Streaming census of this corpus (no extra computation; the compact
    /// per-project view [`summarize_cards`] would produce).
    pub fn summaries(&self) -> Vec<ProjectSummary> {
        self.projects.iter().map(ProjectSummary::of).collect()
    }

    /// The seed the corpus was generated with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All projects, in card order (patterns grouped).
    pub fn projects(&self) -> &[CorpusProject] {
        &self.projects
    }

    /// Projects annotated with a given pattern.
    pub fn of_pattern(&self, p: Pattern) -> impl Iterator<Item = &CorpusProject> {
        self.projects.iter().filter(move |x| x.assigned == p)
    }

    /// `(assigned pattern, measured labels)` pairs — the input shape of the
    /// §5 validation routines.
    pub fn annotated_labels(&self) -> Vec<(Pattern, Labels)> {
        self.projects
            .iter()
            .map(|p| (p.assigned, p.labels))
            .collect()
    }

    /// `(absolute birth month, assigned pattern)` pairs — the input of the
    /// §6.2 birth predictor.
    pub fn birth_data(&self) -> Vec<(usize, Pattern)> {
        self.projects
            .iter()
            .map(|p| (p.metrics.birth_index, p.assigned))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_151_measured_projects() {
        let c = Corpus::generate(42);
        assert_eq!(c.projects().len(), 151);
        for p in c.projects() {
            assert_eq!(
                p.history.month_count() as u32,
                p.card.duration,
                "{}",
                p.card.name
            );
            assert_eq!(
                p.metrics.total_activity as u32, p.card.total_units,
                "{}",
                p.card.name
            );
            assert_eq!(
                p.metrics.birth_index as u32, p.card.birth_month,
                "{}",
                p.card.name
            );
            assert_eq!(
                p.metrics.topband_index as u32, p.card.top_month,
                "{}: top month",
                p.card.name
            );
            assert_eq!(
                p.metrics.active_growth_months as u32, p.card.agm,
                "{}: active growth months",
                p.card.name
            );
        }
    }

    #[test]
    fn non_exception_projects_classify_as_assigned() {
        let c = Corpus::generate(42);
        for p in c.projects().iter().filter(|p| !p.exception) {
            assert_eq!(
                schemachron_core::classify(&p.labels),
                Some(p.assigned),
                "{}: labels {:?}",
                p.card.name,
                p.labels
            );
        }
    }

    #[test]
    fn exception_projects_violate_their_definition() {
        let c = Corpus::generate(42);
        for p in c.projects().iter().filter(|p| p.exception) {
            assert!(
                !p.assigned.matches(&p.labels),
                "{}: marked exception but matches {:?}",
                p.card.name,
                p.assigned
            );
        }
    }

    #[test]
    fn random_corpus_classifies_as_requested() {
        let c = Corpus::generate_random(5, [2, 2, 1, 1, 2, 1, 1, 1]);
        assert_eq!(c.projects().len(), 11);
        for p in c.projects() {
            assert_eq!(
                schemachron_core::classify(&p.labels),
                Some(p.assigned),
                "{}: {:?}",
                p.card.name,
                p.labels
            );
        }
    }

    #[test]
    fn scaled_corpus_cycles_cards() {
        let c = Corpus::generate_scaled(42, 160);
        assert_eq!(c.projects().len(), 160);
        // Project 151 reuses card 0 under a new name but identical timing.
        assert_eq!(
            c.projects()[151].card.duration,
            c.projects()[0].card.duration
        );
        assert_ne!(c.projects()[151].card.name, c.projects()[0].card.name);
        assert_eq!(
            c.projects()[151].metrics.birth_index,
            c.projects()[0].metrics.birth_index
        );
    }

    #[test]
    fn seed_changes_ddl_but_not_timing() {
        let a = Corpus::generate(1);
        let b = Corpus::generate(2);
        for (x, y) in a.projects().iter().zip(b.projects()) {
            assert_eq!(x.metrics.birth_index, y.metrics.birth_index);
            assert_eq!(x.metrics.topband_index, y.metrics.topband_index);
            assert_eq!(x.metrics.total_activity, y.metrics.total_activity);
        }
    }
}
