//! Dialect edge cases the measurement instrument meets in the wild.

use schemachron_ddl::parse_schema;
use schemachron_model::{DataType, Name};

fn clean(sql: &str) -> schemachron_model::Schema {
    let (schema, diags) = parse_schema(sql);
    assert!(
        diags.iter().all(|d| !d.is_error()),
        "unexpected parse errors: {diags:?}\nfor:\n{sql}"
    );
    schema
}

// ------------------------------------------------------------------ MySQL

#[test]
fn mysql_set_type_and_using_btree() {
    let s = clean(
        "CREATE TABLE t (
            flags SET('a','b','c') NOT NULL,
            name VARCHAR(10),
            UNIQUE KEY uq USING BTREE (name)
         ) ENGINE=MyISAM;",
    );
    let t = s.table("t").unwrap();
    assert_eq!(t.attribute("flags").unwrap().data_type.base(), "set");
    assert_eq!(t.uniques.len(), 1);
}

#[test]
fn mysql_partitioned_table_options_are_skipped() {
    let s = clean(
        "CREATE TABLE metrics (
            id INT NOT NULL,
            at DATE NOT NULL,
            PRIMARY KEY (id, at)
         ) ENGINE=InnoDB
         PARTITION BY RANGE (YEAR(at)) (
            PARTITION p0 VALUES LESS THAN (2020),
            PARTITION p1 VALUES LESS THAN MAXVALUE
         );",
    );
    assert_eq!(s.table("metrics").unwrap().attribute_count(), 2);
    assert_eq!(
        s.table("metrics").unwrap().primary_key,
        vec![Name::from("id"), Name::from("at")]
    );
}

#[test]
fn mysql_character_set_and_collate_column_options() {
    let s = clean(
        "CREATE TABLE t (
            a VARCHAR(10) CHARACTER SET utf8mb4 COLLATE utf8mb4_bin NOT NULL,
            b TEXT CHARSET latin1
         );",
    );
    let t = s.table("t").unwrap();
    assert!(t.attribute("a").unwrap().not_null);
    assert_eq!(t.attribute_count(), 2);
}

#[test]
fn mysql_backslash_escaped_default() {
    let s = clean(r#"CREATE TABLE t (path VARCHAR(64) DEFAULT 'C:\\data');"#);
    assert!(s
        .table("t")
        .unwrap()
        .attribute("path")
        .unwrap()
        .default
        .is_some());
}

// --------------------------------------------------------------- Postgres

#[test]
fn postgres_inherits_clause_is_table_option() {
    let s = clean(
        "CREATE TABLE child (extra INT) INHERITS (parent);
         CREATE TABLE plain (x INT);",
    );
    assert_eq!(s.table("child").unwrap().attribute_count(), 1);
    assert!(s.table("plain").is_some());
}

#[test]
fn postgres_multidim_arrays() {
    let s = clean("CREATE TABLE t (grid INT[][]);");
    let dt = &s.table("t").unwrap().attribute("grid").unwrap().data_type;
    assert_eq!(dt.base(), "int");
    assert_eq!(dt.modifiers(), ["array", "array"]);
}

#[test]
fn postgres_quoted_schema_qualified_names() {
    let s = clean(r#"CREATE TABLE "public"."User Accounts" ("Weird Col" INT);"#);
    let t = s.table("User Accounts").unwrap();
    assert!(t.attribute("Weird Col").is_some());
}

#[test]
fn postgres_set_data_type_and_only() {
    let s = clean(
        "CREATE TABLE t (x INT);
         ALTER TABLE ONLY t ALTER COLUMN x SET DATA TYPE numeric(12, 4);",
    );
    assert_eq!(
        s.table("t").unwrap().attribute("x").unwrap().data_type,
        DataType::with_params("numeric", vec![12, 4])
    );
}

#[test]
fn postgres_generated_identity_column() {
    let s = clean(
        "CREATE TABLE t (
            id integer GENERATED ALWAYS AS IDENTITY (START WITH 10),
            doubled integer GENERATED ALWAYS AS (id * 2) STORED
         );",
    );
    let t = s.table("t").unwrap();
    assert!(t.attribute("id").unwrap().auto_increment);
    assert!(t.attribute("doubled").is_some());
}

// ----------------------------------------------------------------- SQLite

#[test]
fn sqlite_without_rowid_and_nested_checks() {
    let s = clean(
        "CREATE TABLE kv (
            k TEXT PRIMARY KEY,
            v TEXT CHECK (length(v) > 0 AND (v != 'x' OR k = 'ok'))
         ) WITHOUT ROWID;",
    );
    assert_eq!(s.table("kv").unwrap().attribute_count(), 2);
}

// ------------------------------------------------------------- degenerate

#[test]
fn empty_and_comment_only_scripts() {
    assert!(clean("").is_empty());
    assert!(clean("-- nothing\n/* here */\n;;;").is_empty());
}

#[test]
fn crlf_line_endings() {
    let s = clean("CREATE TABLE t (\r\n  a INT,\r\n  b TEXT\r\n);\r\n");
    assert_eq!(s.table("t").unwrap().attribute_count(), 2);
}

#[test]
fn leading_dot_decimal_default() {
    let s = clean("CREATE TABLE t (r REAL DEFAULT .5);");
    assert_eq!(
        s.table("t")
            .unwrap()
            .attribute("r")
            .unwrap()
            .default
            .as_deref(),
        Some(".5")
    );
}

#[test]
fn unicode_identifiers() {
    let s = clean("CREATE TABLE пользователи (имя TEXT, 数量 INT);");
    let t = s.table("пользователи").unwrap();
    assert_eq!(t.attribute_count(), 2);
    assert!(t.attribute("数量").is_some());
}

#[test]
fn deep_paren_nesting_in_checks_does_not_recurse() {
    // Expression capture is iterative; 200 nesting levels must be fine.
    let open = "(".repeat(200);
    let close = ")".repeat(200);
    let sql = format!("CREATE TABLE t (x INT, CHECK ({open}x > 0{close}));");
    let s = clean(&sql);
    assert_eq!(s.table("t").unwrap().attribute_count(), 1);
}

#[test]
fn statement_without_trailing_semicolon() {
    let s = clean("CREATE TABLE t (a INT)");
    assert_eq!(s.table("t").unwrap().attribute_count(), 1);
}

#[test]
fn multiple_statements_one_line() {
    let s = clean("CREATE TABLE a (x INT);CREATE TABLE b (y INT);DROP TABLE a;");
    assert!(s.table("a").is_none());
    assert!(s.table("b").is_some());
}

#[test]
fn alter_add_multiple_columns_in_one_statement() {
    let s = clean(
        "CREATE TABLE t (a INT);
         ALTER TABLE t ADD COLUMN b INT, ADD COLUMN c TEXT, ADD d DATE;",
    );
    assert_eq!(s.table("t").unwrap().attribute_count(), 4);
}

#[test]
fn drop_column_with_cascade() {
    let s = clean(
        "CREATE TABLE t (a INT, b INT);
         ALTER TABLE t DROP COLUMN b CASCADE;",
    );
    assert_eq!(s.table("t").unwrap().attribute_count(), 1);
}

#[test]
fn if_exists_everywhere() {
    let s = clean(
        "DROP TABLE IF EXISTS ghost;
         CREATE TABLE IF NOT EXISTS t (a INT);
         ALTER TABLE IF EXISTS t ADD COLUMN IF NOT EXISTS b INT;
         ALTER TABLE IF EXISTS phantom ADD COLUMN c INT;",
    );
    assert_eq!(s.table("t").unwrap().attribute_count(), 2);
    assert!(s.table("phantom").is_none());
}
