#![forbid(unsafe_code)]

//! Derive macros for the in-tree `serde` stand-in.
//!
//! The offline build vendors a minimal `serde`; this crate provides its
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` using nothing but the
//! compiler's own `proc_macro` API (no `syn`/`quote`, which we cannot
//! fetch). It supports the shapes this workspace actually uses:
//!
//! - structs with named fields → a JSON-style map, field name → value;
//! - tuple structs → a sequence (or the inner value for 1-field structs
//!   marked `#[serde(transparent)]`);
//! - enums with unit variants → the variant name as a string;
//! - enums with payload variants → `{"Variant": <payload>}`.
//!
//! Generic types are intentionally unsupported (none of the workspace's
//! serialized types are generic); the derive panics with a clear message if
//! it meets one, so a future refactor fails loudly instead of silently.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the in-tree reduced trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = serialize_body(&item);
    format!(
        "impl serde::Serialize for {} {{\n\
         fn to_content(&self) -> serde::Content {{ {} }}\n\
         }}",
        item.name, body
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (a marker in the in-tree stand-in).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("generated Deserialize impl parses")
}

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: arity.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: variants as (name, payload shape).
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    transparent: bool,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Leading attributes and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let text = g.stream().to_string().replace(' ', "");
                    if text.starts_with("serde(") && text.contains("transparent") {
                        transparent = true;
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                i += 1;
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stand-in derive does not support generic type `{name}`");
        }
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            None => Shape::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(tuple_arity(g.stream()))
            }
            other => panic!("unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(enum_variants(g.stream()))
            }
            other => panic!("unexpected enum body: {other:?}"),
        },
        k => panic!("cannot derive for `{k} {name}`"),
    };

    Item {
        name,
        transparent,
        shape,
    }
}

/// Field names of a `{ ... }` struct body.
fn named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes (incl. doc comments) and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        // Field name followed by `:`.
        let TokenTree::Ident(id) = &tokens[i] else {
            panic!("expected field name, found {:?}", tokens[i]);
        };
        fields.push(id.to_string());
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field `{}`",
            fields.last().unwrap()
        );
        i += 1;
        // Skip the type up to the next top-level comma. Track angle-bracket
        // depth so `BTreeMap<String, usize>` does not split the field list.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Arity of a `( ... )` tuple-struct body.
fn tuple_arity(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => arity += 1,
            _ => {}
        }
    }
    arity
}

/// Variants of an `enum { ... }` body.
fn enum_variants(body: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            _ => {}
        }
        let TokenTree::Ident(id) = &tokens[i] else {
            panic!("expected variant name, found {:?}", tokens[i]);
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip a `= discriminant` if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 2;
            }
        }
        variants.push((name, shape));
    }
    variants
}

fn serialize_body(item: &Item) -> String {
    match &item.shape {
        Shape::Unit => "serde::Content::Null".to_owned(),
        Shape::Tuple(1) if item.transparent => {
            "serde::Serialize::to_content(&self.0)".to_owned()
        }
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", elems.join(", "))
        }
        Shape::Struct(fields) if item.transparent && fields.len() == 1 => {
            format!("serde::Serialize::to_content(&self.{})", fields[0])
        }
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_owned(), serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let ty = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{ty}::{v} => serde::Content::Str(\"{v}\".to_owned()),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> =
                            (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "serde::Serialize::to_content(__f0)".to_owned()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_content({b})"))
                                .collect();
                            format!("serde::Content::Seq(vec![{}])", elems.join(", "))
                        };
                        format!(
                            "{ty}::{v}({}) => serde::Content::Map(vec![(\"{v}\".to_owned(), {payload})]),",
                            binds.join(", ")
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_owned(), serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{ty}::{v} {{ {binds} }} => serde::Content::Map(vec![(\"{v}\".to_owned(), serde::Content::Map(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    }
}
