//! Implicit-schema inference from JSON document collections.

use std::collections::BTreeMap;

use schemachron_model::{Attribute, DataType, Schema, Table};
use serde_json::Value;

/// The inferred type of a document field, after unification over all
/// documents of the entity type.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum JsonType {
    /// Only `null` values seen.
    Null,
    /// Boolean.
    Bool,
    /// Any JSON number.
    Number,
    /// String.
    String,
    /// Array (element types are not distinguished at the logical level).
    Array,
    /// Nested object deeper than the flattening limit.
    Object,
    /// Conflicting types across documents.
    Mixed,
}

impl JsonType {
    /// The type of a single JSON value.
    pub fn of(v: &Value) -> JsonType {
        match v {
            Value::Null => JsonType::Null,
            Value::Bool(_) => JsonType::Bool,
            Value::Number(_) => JsonType::Number,
            Value::String(_) => JsonType::String,
            Value::Array(_) => JsonType::Array,
            Value::Object(_) => JsonType::Object,
        }
    }

    /// Unifies two observations of the same field.
    pub fn unify(self, other: JsonType) -> JsonType {
        match (self, other) {
            (a, b) if a == b => a,
            // Null unifies with anything (it marks optionality, not type).
            (JsonType::Null, b) => b,
            (a, JsonType::Null) => a,
            _ => JsonType::Mixed,
        }
    }

    /// The logical data-type name used in the mapped relational schema.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonType::Null => "null",
            JsonType::Bool => "boolean",
            JsonType::Number => "number",
            JsonType::String => "string",
            JsonType::Array => "array",
            JsonType::Object => "object",
            JsonType::Mixed => "mixed",
        }
    }
}

/// How deeply nested objects are flattened into dotted field paths
/// (`address.city`); anything deeper maps to the opaque `object` type.
pub const FLATTEN_DEPTH: usize = 2;

/// A snapshot of a document store: entity type → documents.
#[derive(Clone, Debug, Default)]
pub struct Collections {
    entities: BTreeMap<String, Vec<Value>>,
}

impl Collections {
    /// An empty store snapshot.
    pub fn new() -> Self {
        Collections::default()
    }

    /// Adds one parsed document to an entity type's collection.
    pub fn add(&mut self, entity: impl Into<String>, doc: Value) {
        self.entities.entry(entity.into()).or_default().push(doc);
    }

    /// Adds one document from JSON text.
    pub fn add_json(
        &mut self,
        entity: impl Into<String>,
        json: &str,
    ) -> Result<(), serde_json::Error> {
        self.add(entity, serde_json::from_str(json)?);
        Ok(())
    }

    /// Iterates over `(entity type, documents)`.
    pub fn entities(&self) -> impl Iterator<Item = (&String, &Vec<Value>)> {
        self.entities.iter()
    }

    /// Number of entity types.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }
}

/// One inferred field: unified type plus whether every document carries it.
#[derive(Clone, Debug, PartialEq, Eq)]
struct FieldInfo {
    ty: JsonType,
    seen: usize,
    saw_null: bool,
}

/// Infers the field structure of one entity type from its documents and
/// maps it to a [`Table`].
///
/// Fields of nested objects are flattened up to [`FLATTEN_DEPTH`] levels
/// (`address.city`); non-object documents contribute a synthetic `_value`
/// field. A field present in **every** document becomes `NOT NULL` — the
/// document-store analogue of a required attribute.
pub fn infer_entity(name: &str, docs: &[Value]) -> Table {
    let mut fields: BTreeMap<String, FieldInfo> = BTreeMap::new();
    for doc in docs {
        match doc {
            Value::Object(map) => collect_fields(map, "", 0, &mut fields),
            other => {
                let ty = JsonType::of(other);
                upsert(&mut fields, "_value", ty);
            }
        }
    }
    let mut t = Table::new(name);
    for (field, info) in &fields {
        let mut a = Attribute::new(field.clone(), DataType::named(info.ty.type_name()));
        a.not_null = info.seen == docs.len() && !info.saw_null && info.ty != JsonType::Null;
        t.push_attribute(a);
    }
    t
}

fn collect_fields(
    map: &serde_json::Map<String, Value>,
    prefix: &str,
    depth: usize,
    fields: &mut BTreeMap<String, FieldInfo>,
) {
    for (k, v) in map {
        let path = if prefix.is_empty() {
            k.clone()
        } else {
            format!("{prefix}.{k}")
        };
        match v {
            Value::Object(inner) if depth + 1 < FLATTEN_DEPTH => {
                collect_fields(inner, &path, depth + 1, fields);
            }
            other => upsert(fields, &path, JsonType::of(other)),
        }
    }
}

fn upsert(fields: &mut BTreeMap<String, FieldInfo>, path: &str, ty: JsonType) {
    let is_null = ty == JsonType::Null;
    fields
        .entry(path.to_owned())
        .and_modify(|info| {
            info.ty = info.ty.clone().unify(ty.clone());
            info.seen += 1;
            info.saw_null |= is_null;
        })
        .or_insert(FieldInfo {
            ty,
            seen: 1,
            saw_null: is_null,
        });
}

/// Infers the whole implicit schema of a store snapshot: one table per
/// entity type.
pub fn infer_schema(store: &Collections) -> Schema {
    let mut schema = Schema::new();
    for (entity, docs) in store.entities() {
        schema.insert_table(infer_entity(entity, docs));
    }
    schema
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(entity: &str, docs: &[&str]) -> Collections {
        let mut s = Collections::new();
        for d in docs {
            s.add_json(entity, d).expect("valid json");
        }
        s
    }

    #[test]
    fn fields_and_types_inferred() {
        let s = store("users", &[r#"{"id": 1, "name": "a", "active": true}"#]);
        let schema = infer_schema(&s);
        let t = schema.table("users").unwrap();
        assert_eq!(
            t.attribute("id").unwrap().data_type,
            DataType::named("number")
        );
        assert_eq!(
            t.attribute("name").unwrap().data_type,
            DataType::named("string")
        );
        assert_eq!(
            t.attribute("active").unwrap().data_type,
            DataType::named("boolean")
        );
    }

    #[test]
    fn optional_fields_are_nullable() {
        let s = store("e", &[r#"{"a": 1, "b": 2}"#, r#"{"a": 3}"#]);
        let t = infer_schema(&s);
        let t = t.table("e").unwrap();
        assert!(t.attribute("a").unwrap().not_null);
        assert!(!t.attribute("b").unwrap().not_null);
    }

    #[test]
    fn conflicting_types_become_mixed() {
        let s = store("e", &[r#"{"x": 1}"#, r#"{"x": "one"}"#]);
        let t = infer_schema(&s);
        assert_eq!(
            t.table("e").unwrap().attribute("x").unwrap().data_type,
            DataType::named("mixed")
        );
    }

    #[test]
    fn null_marks_optionality_not_type() {
        let s = store("e", &[r#"{"x": null}"#, r#"{"x": 5}"#]);
        let t = infer_schema(&s);
        let x = t.table("e").unwrap().attribute("x").unwrap();
        assert_eq!(x.data_type, DataType::named("number"));
        assert!(!x.not_null, "a null observation makes the field nullable");
    }

    #[test]
    fn nested_objects_flatten_one_level() {
        let s = store("e", &[r#"{"address": {"city": "x", "geo": {"lat": 1.0}}}"#]);
        let t = infer_schema(&s);
        let e = t.table("e").unwrap();
        assert!(e.attribute("address.city").is_some());
        // Depth limit: `geo` stays an opaque object.
        assert_eq!(
            e.attribute("address.geo").unwrap().data_type,
            DataType::named("object")
        );
    }

    #[test]
    fn arrays_are_logical_arrays() {
        let s = store("e", &[r#"{"tags": ["a", "b"]}"#]);
        let t = infer_schema(&s);
        assert_eq!(
            t.table("e").unwrap().attribute("tags").unwrap().data_type,
            DataType::named("array")
        );
    }

    #[test]
    fn scalar_documents_get_value_field() {
        let mut s = Collections::new();
        s.add("counters", serde_json::json!(42));
        let t = infer_schema(&s);
        assert!(t.table("counters").unwrap().attribute("_value").is_some());
    }

    #[test]
    fn unify_is_commutative_and_idempotent() {
        use JsonType::*;
        for a in [Null, Bool, Number, String, Array, Object, Mixed] {
            for b in [Null, Bool, Number, String, Array, Object, Mixed] {
                assert_eq!(a.clone().unify(b.clone()), b.clone().unify(a.clone()));
            }
            assert_eq!(a.clone().unify(a.clone()), a);
        }
    }

    #[test]
    fn empty_store_yields_empty_schema() {
        assert!(infer_schema(&Collections::new()).is_empty());
    }
}
