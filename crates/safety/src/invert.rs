//! Inverse synthesis and replay: the machinery that turns a classification
//! into a *machine-checked* claim.
//!
//! [`inverse_op`] synthesizes the inverse `DiffOp` batch for every
//! non-`Lossy` op; [`apply_op`] replays ops over a [`Schema`]; and
//! [`fingerprint`] canonicalizes a schema so "applying the op and then its
//! inverse is the identity" can be asserted as string equality, robust to
//! the constraint-vector reorderings an append-then-remove cycle causes.

use schemachron_dialect::DiffOp;
use schemachron_model::{Schema, Table};

use crate::classify::{classify_op, rename_partner, Safety};

/// Synthesizes the inverse batch of `op`, or `None` when the op is `Lossy`
/// (no inverse exists: the data is gone).
///
/// `before` is the schema the op applies to — needed to restore dropped
/// view definitions and rename-dropped column definitions; `batch` is the
/// op's whole version transition, needed to recognize rename pairs.
pub fn inverse_op(op: &DiffOp, before: &Schema, batch: &[DiffOp]) -> Option<Vec<DiffOp>> {
    match op {
        DiffOp::CreateTable(t) => Some(vec![DiffOp::DropTable(t.name.clone())]),
        DiffOp::CreateView(v) => Some(vec![DiffOp::DropView(v.name.clone())]),
        DiffOp::AddColumn { table, attr } => Some(vec![DiffOp::DropColumn {
            table: table.clone(),
            column: attr.name.clone(),
        }]),
        DiffOp::AlterColumn { table, from, to } => Some(vec![DiffOp::AlterColumn {
            table: table.clone(),
            from: to.clone(),
            to: from.clone(),
        }]),
        DiffOp::SetPrimaryKey { table, from, to } => Some(vec![DiffOp::SetPrimaryKey {
            table: table.clone(),
            from: to.clone(),
            to: from.clone(),
        }]),
        DiffOp::AddForeignKey { table, fk } => Some(vec![DiffOp::DropForeignKey {
            table: table.clone(),
            fk: fk.clone(),
        }]),
        DiffOp::DropForeignKey { table, fk } => Some(vec![DiffOp::AddForeignKey {
            table: table.clone(),
            fk: fk.clone(),
        }]),
        DiffOp::AddUnique { table, columns } => Some(vec![DiffOp::DropUnique {
            table: table.clone(),
            columns: columns.clone(),
        }]),
        DiffOp::DropUnique { table, columns } => Some(vec![DiffOp::AddUnique {
            table: table.clone(),
            columns: columns.clone(),
        }]),
        DiffOp::DropView(name) => {
            let view = before.view(name.as_str())?;
            Some(vec![DiffOp::CreateView(view.clone())])
        }
        DiffOp::DropColumn { table, column } => {
            // Only the rename-shaped (Recoverable) drop has an inverse: the
            // dropped definition is re-added from the pre-state schema.
            let attr = before.table_of(table)?.attribute_of(column)?;
            rename_partner(batch, table, attr, before)?;
            Some(vec![DiffOp::AddColumn {
                table: table.clone(),
                attr: attr.clone(),
            }])
        }
        DiffOp::DropTable(_) => None,
    }
}

/// Applies one op to `schema` in place. Returns `false` when the target
/// does not exist (a sign the op batch and the schema diverged).
#[allow(clippy::too_many_lines)]
pub fn apply_op(schema: &mut Schema, op: &DiffOp) -> bool {
    match op {
        DiffOp::CreateTable(t) => {
            schema.insert_table(t.clone());
            true
        }
        DiffOp::DropTable(name) => schema.remove_table(name.as_str()).is_some(),
        DiffOp::CreateView(v) => {
            schema.insert_view(v.clone());
            true
        }
        DiffOp::DropView(name) => schema.remove_view(name.as_str()).is_some(),
        DiffOp::AddColumn { table, attr } => {
            let Some(t) = schema.table_mut(table.as_str()) else {
                return false;
            };
            t.push_attribute(attr.clone());
            true
        }
        DiffOp::DropColumn { table, column } => schema
            .table_mut(table.as_str())
            .is_some_and(|t| t.remove_attribute(column.as_str()).is_some()),
        DiffOp::AlterColumn { table, from, to } => {
            let Some(t) = schema.table_mut(table.as_str()) else {
                return false;
            };
            if t.attribute_of(&from.name).is_none() {
                return false;
            }
            if from.name != to.name {
                t.rename_attribute(from.name.as_str(), to.name.clone());
            }
            t.push_attribute(to.clone());
            true
        }
        DiffOp::SetPrimaryKey { table, to, .. } => {
            let Some(t) = schema.table_mut(table.as_str()) else {
                return false;
            };
            t.primary_key = to.clone();
            true
        }
        DiffOp::AddForeignKey { table, fk } => {
            let Some(t) = schema.table_mut(table.as_str()) else {
                return false;
            };
            t.foreign_keys.push(fk.clone());
            true
        }
        DiffOp::DropForeignKey { table, fk } => {
            let Some(t) = schema.table_mut(table.as_str()) else {
                return false;
            };
            let n = t.foreign_keys.len();
            t.foreign_keys.retain(|f| f != fk);
            t.foreign_keys.len() < n
        }
        DiffOp::AddUnique { table, columns } => {
            let Some(t) = schema.table_mut(table.as_str()) else {
                return false;
            };
            t.uniques.push(columns.clone());
            true
        }
        DiffOp::DropUnique { table, columns } => {
            let Some(t) = schema.table_mut(table.as_str()) else {
                return false;
            };
            let n = t.uniques.len();
            t.uniques.retain(|u| u != columns);
            t.uniques.len() < n
        }
    }
}

/// A canonical, order-insensitive fingerprint of a schema.
///
/// Attributes, foreign keys and uniques are sorted (their vector order is a
/// rendering concern, not a logical one), names are normalized, and every
/// logical facet — types, nullability, defaults, auto-increment, primary
/// key, view definitions — is included. Two schemas are logically equal
/// iff their fingerprints are byte-equal.
pub fn fingerprint(schema: &Schema) -> String {
    let mut out = String::new();
    for table in schema.tables() {
        fingerprint_table(&mut out, table);
    }
    for view in schema.views() {
        out.push_str("view ");
        out.push_str(&view.name.normalized());
        out.push_str(": ");
        out.push_str(&view.definition);
        out.push('\n');
    }
    out
}

fn fingerprint_table(out: &mut String, table: &Table) {
    out.push_str("table ");
    out.push_str(&table.name.normalized());
    out.push('\n');
    let mut cols: Vec<String> = table
        .attributes()
        .iter()
        .map(|a| {
            let mut line = format!("  col {} {}", a.name.normalized(), a.data_type);
            if a.not_null {
                line.push_str(" not_null");
            }
            if let Some(d) = &a.default {
                line.push_str(" default=");
                line.push_str(d);
            }
            if a.auto_increment {
                line.push_str(" auto_increment");
            }
            line.push('\n');
            line
        })
        .collect();
    cols.sort();
    for c in cols {
        out.push_str(&c);
    }
    if !table.primary_key.is_empty() {
        let cols: Vec<String> = table.primary_key.iter().map(|n| n.normalized()).collect();
        out.push_str("  pk (");
        out.push_str(&cols.join(", "));
        out.push_str(")\n");
    }
    let mut fks: Vec<String> = table
        .foreign_keys
        .iter()
        .map(|fk| {
            let cols: Vec<String> = fk.columns.iter().map(|n| n.normalized()).collect();
            let refs: Vec<String> = fk.ref_columns.iter().map(|n| n.normalized()).collect();
            format!(
                "  fk ({}) -> {} ({})\n",
                cols.join(", "),
                fk.ref_table.normalized(),
                refs.join(", "),
            )
        })
        .collect();
    fks.sort();
    for f in fks {
        out.push_str(&f);
    }
    let mut uniques: Vec<String> = table
        .uniques
        .iter()
        .map(|u| {
            let cols: Vec<String> = u.iter().map(|n| n.normalized()).collect();
            format!("  unique ({})\n", cols.join(", "))
        })
        .collect();
    uniques.sort();
    for u in uniques {
        out.push_str(&u);
    }
}

/// Applies `op` to a copy of `state`, then the synthesized inverse, and
/// checks the round trip lands back on `state`'s fingerprint. Returns
/// `None` when no inverse exists, `Some(ok)` otherwise.
pub(crate) fn check_round_trip(state: &Schema, op: &DiffOp, batch: &[DiffOp]) -> Option<bool> {
    let inverse = inverse_op(op, state, batch)?;
    let before_fp = fingerprint(state);
    let mut replay = state.clone();
    if !apply_op(&mut replay, op) {
        return Some(false);
    }
    for inv in &inverse {
        if !apply_op(&mut replay, inv) {
            return Some(false);
        }
    }
    Some(fingerprint(&replay) == before_fp)
}

/// Exhaustiveness check used by property tests: every op the classifier
/// calls non-`Lossy` must synthesize an inverse, and every `Lossy` op must
/// not.
pub fn inverse_matches_class(op: &DiffOp, before: &Schema, batch: &[DiffOp]) -> bool {
    let class = classify_op(op, before, batch).safety;
    let has_inverse = inverse_op(op, before, batch).is_some();
    match class {
        Safety::Lossy => !has_inverse,
        Safety::Lossless | Safety::Recoverable => has_inverse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_dialect::diff_ops;
    use schemachron_model::{Attribute, DataType, Name, View};

    fn two_versions() -> (Schema, Schema) {
        let mut a = Schema::default();
        let mut users = Table::new("users");
        users.push_attribute(Attribute::new("id", DataType::named("int")).not_null());
        users.push_attribute(Attribute::new(
            "name",
            DataType::with_params("varchar", vec![64]),
        ));
        users.primary_key = vec![Name::new("id")];
        a.insert_table(users);
        a.insert_view(View {
            name: Name::new("v_users"),
            definition: "SELECT id FROM users".to_owned(),
        });

        let mut b = a.clone();
        if let Some(t) = b.table_mut("users") {
            t.push_attribute(Attribute::new(
                "email",
                DataType::with_params("varchar", vec![255]),
            ));
            t.push_attribute(Attribute::new(
                "name",
                DataType::with_params("varchar", vec![128]),
            ));
            t.uniques.push(vec![Name::new("email")]);
        }
        let mut orders = Table::new("orders");
        orders.push_attribute(Attribute::new("id", DataType::named("int")));
        b.insert_table(orders);
        (a, b)
    }

    #[test]
    fn apply_replays_a_diff_onto_its_source() {
        let (a, b) = two_versions();
        let ops = diff_ops(&a, &b);
        assert!(!ops.is_empty());
        let mut replay = a.clone();
        for op in &ops {
            assert!(apply_op(&mut replay, op), "apply failed for {}", op.describe());
        }
        assert_eq!(fingerprint(&replay), fingerprint(&b));
    }

    #[test]
    fn every_non_lossy_op_round_trips() {
        let (a, b) = two_versions();
        let ops = diff_ops(&a, &b);
        let mut state = a.clone();
        for op in &ops {
            assert!(inverse_matches_class(op, &state, &ops), "{}", op.describe());
            if let Some(ok) = check_round_trip(&state, op, &ops) {
                assert!(ok, "round trip failed for {}", op.describe());
            }
            apply_op(&mut state, op);
        }
    }

    #[test]
    fn dropped_view_is_restored_from_the_prior_schema() {
        let (a, _) = two_versions();
        let op = DiffOp::DropView(Name::new("v_users"));
        let inverse = inverse_op(&op, &a, &[]).expect("views are restorable");
        assert_eq!(inverse.len(), 1);
        let ok = check_round_trip(&a, &op, &[]).expect("inverse exists");
        assert!(ok);
    }

    #[test]
    fn drop_table_has_no_inverse() {
        let (a, _) = two_versions();
        let op = DiffOp::DropTable(Name::new("users"));
        assert!(inverse_op(&op, &a, &[]).is_none());
        assert!(check_round_trip(&a, &op, &[]).is_none());
    }

    #[test]
    fn fingerprint_ignores_constraint_vector_order() {
        let mut a = Schema::default();
        let mut t = Table::new("t");
        t.push_attribute(Attribute::new("x", DataType::named("int")));
        t.push_attribute(Attribute::new("y", DataType::named("int")));
        t.uniques.push(vec![Name::new("x")]);
        t.uniques.push(vec![Name::new("y")]);
        a.insert_table(t);
        let mut b = Schema::default();
        let mut t = Table::new("t");
        t.push_attribute(Attribute::new("y", DataType::named("int")));
        t.push_attribute(Attribute::new("x", DataType::named("int")));
        t.uniques.push(vec![Name::new("y")]);
        t.uniques.push(vec![Name::new("x")]);
        b.insert_table(t);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
