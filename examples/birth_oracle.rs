//! Birth oracle: the §6.2 use case — "assume a curator, or an external
//! assessor, who extracts the history of changes of a software project...
//! can the curator make an educated guess on the future of how the schema
//! will evolve?"
//!
//! The example fits the birth-point predictor on the corpus and consults it
//! for four hypothetical projects whose schemata were born at different
//! points of their lives.
//!
//! Run with: `cargo run --example birth_oracle`

use schemachron::core::predict::{BirthBucket, BirthPredictor};
use schemachron::core::{Family, Pattern};
use schemachron::corpus::Corpus;

fn main() {
    let corpus = Corpus::generate(42);
    let oracle = BirthPredictor::fit(&corpus.birth_data());

    println!(
        "Where are schemata born? (over {} projects)",
        oracle.total()
    );
    for bucket in BirthBucket::ALL {
        println!(
            "  {:<20} {:>3} projects ({:.0}%)",
            bucket.label(),
            oracle.bucket_total(bucket),
            oracle.bucket_probability(bucket) * 100.0
        );
    }

    for (scenario, birth_month) in [
        ("schema committed with the very first sources", 0usize),
        ("schema appears in the 4th month", 4),
        ("schema appears in the 10th month", 10),
        ("database added two years into the project", 24),
    ] {
        let bucket = BirthBucket::of(birth_month);
        println!(
            "\n── {scenario} (month {birth_month}, bucket {})",
            bucket.label()
        );
        println!(
            "   P(sharp focused change — the schema freezes early): {:.0}%",
            oracle.rigidity_probability(bucket) * 100.0
        );
        println!(
            "   P(regular curation — plan for ongoing schema work): {:.0}%",
            oracle.family_probability(Family::StairwayToHeaven, bucket) * 100.0
        );
        println!(
            "   P(late change — budget for a wake-up near the end):  {:.0}%",
            oracle.family_probability(Family::ScaredToFallAsleepAgain, bucket) * 100.0
        );
        let probs = oracle.probabilities(bucket);
        let mut ranked: Vec<(Pattern, f64)> = Pattern::ALL
            .iter()
            .map(|&p| (p, probs[p.ordinal()]))
            .filter(|(_, pr)| *pr > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let top: Vec<String> = ranked
            .iter()
            .take(3)
            .map(|(p, pr)| format!("{} {:.0}%", p.name(), pr * 100.0))
            .collect();
        println!("   most likely patterns: {}", top.join(", "));
    }
}
