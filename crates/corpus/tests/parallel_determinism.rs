//! Regression tests: parallel ingestion must be byte-for-byte equivalent
//! to a serial run. Each project is independently seeded and results are
//! reassembled in card order, so worker count must never leak into output.
//!
//! Every comparison clears the stage cache between builds — otherwise the
//! second build would assemble from the first build's cached artifacts and
//! the equivalence check would be vacuous.

use schemachron_corpus::{pipeline, Corpus};

fn assert_same(a: &Corpus, b: &Corpus) {
    assert_eq!(a.projects().len(), b.projects().len());
    for (x, y) in a.projects().iter().zip(b.projects()) {
        assert_eq!(x.card, y.card);
        assert_eq!(x.assigned, y.assigned);
        assert_eq!(x.metrics, y.metrics, "{}", x.card.name);
        assert_eq!(x.labels, y.labels, "{}", x.card.name);
        assert_eq!(x.history, y.history, "{}", x.card.name);
    }
}

/// Builds with a cleared stage cache so the run actually recomputes.
fn fresh(build: impl FnOnce() -> Corpus) -> Corpus {
    pipeline::clear_stage_cache();
    build()
}

#[test]
fn generate_is_jobs_invariant() {
    let serial = fresh(|| Corpus::generate_jobs(42, 1));
    assert_eq!(serial.projects().len(), 151);
    for jobs in [2, 3, 8] {
        assert_same(&serial, &fresh(|| Corpus::generate_jobs(42, jobs)));
    }
}

#[test]
fn generate_scaled_is_jobs_invariant() {
    let serial = fresh(|| Corpus::generate_scaled_jobs(42, 604, 1));
    assert_eq!(serial.projects().len(), 604);
    assert_same(&serial, &fresh(|| Corpus::generate_scaled_jobs(42, 604, 4)));
}

#[test]
fn generate_stratified_scale10_is_jobs_invariant() {
    // The headline scale point: 10× the paper corpus (1510 projects),
    // serial vs. an 8-worker pool over the sharded stage cache. Histories
    // are compared member-by-member — worker count, shard placement and
    // chunked work claiming must never leak into any project's bytes.
    let serial = fresh(|| Corpus::generate_stratified_jobs(42, 10, 1));
    assert_eq!(serial.projects().len(), 1510);
    let threaded = fresh(|| Corpus::generate_stratified_jobs(42, 10, 8));
    assert_same(&serial, &threaded);
    // The streaming summary path (what the bench grid measures) agrees too.
    assert_eq!(serial.summaries(), threaded.summaries());
}

#[test]
fn generate_random_is_jobs_invariant() {
    let counts = [2, 2, 1, 1, 2, 1, 1, 1];
    let serial = fresh(|| Corpus::generate_random_jobs(9, counts, 1));
    assert_same(&serial, &fresh(|| Corpus::generate_random_jobs(9, counts, 4)));
}

#[test]
fn serial_fallback_threshold_is_output_invariant() {
    // Corpora sized just under and just over the serial-fallback cutoff
    // (jobs * MIN_ITEMS_PER_WORKER) must come out identical to a serial
    // build: the fallback may change the schedule, never the corpus.
    let cut = 2 * schemachron_corpus::MIN_ITEMS_PER_WORKER;
    for size in [cut - 1, cut + 1] {
        let serial = fresh(|| Corpus::generate_scaled_jobs(42, size, 1));
        let threaded = fresh(|| Corpus::generate_scaled_jobs(42, size, 2));
        assert_eq!(serial.projects().len(), size);
        assert_same(&serial, &threaded);
    }
}

#[test]
fn build_count_increments_per_generation() {
    let before = Corpus::build_count();
    let _ = Corpus::generate_jobs(1, 2);
    let _ = Corpus::generate_jobs(1, 2);
    assert_eq!(Corpus::build_count(), before + 2);
}
