//! The measurement instrument against realistic, messy dumps: a
//! WordPress-style MySQL dump, a PostgreSQL `pg_dump`-style schema and an
//! SQLite `.dump`-style script (the three dialect families of the study's
//! FOSS corpus).

use schemachron::ddl::parse_schema;
use schemachron::model::{DataType, Name};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn wordpress_style_mysql_dump() {
    let (schema, diags) = parse_schema(&fixture("blog_mysql.sql"));
    assert!(
        diags.iter().all(|d| !d.is_error()),
        "only skips expected: {diags:?}"
    );
    assert_eq!(schema.table_count(), 3);

    let users = schema.table("wp_users").unwrap();
    assert_eq!(users.attribute_count(), 7);
    assert_eq!(users.primary_key, vec![Name::from("ID")]);
    assert_eq!(
        users.attribute("ID").unwrap().data_type,
        DataType::with_params("bigint", vec![20]).with_modifier("unsigned")
    );
    assert!(users.attribute("ID").unwrap().auto_increment);
    assert_eq!(
        users.attribute("user_login").unwrap().default.as_deref(),
        Some("''")
    );

    let posts = schema.table("wp_posts").unwrap();
    assert_eq!(posts.foreign_keys.len(), 1);
    assert_eq!(posts.foreign_keys[0].ref_table, Name::from("wp_users"));

    let options = schema.table("wp_options").unwrap();
    assert_eq!(options.uniques.len(), 1);
    let autoload = options.attribute("autoload").unwrap();
    assert_eq!(autoload.data_type.base(), "enum");
    assert_eq!(autoload.data_type.modifiers(), ["values:yes|no"]);
}

#[test]
fn postgres_style_pg_dump() {
    let (schema, diags) = parse_schema(&fixture("tracker_postgres.sql"));
    assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
    assert_eq!(schema.table_count(), 2);
    assert_eq!(schema.views().count(), 1);

    let projects = schema.table("projects").unwrap();
    let id = projects.attribute("id").unwrap();
    assert_eq!(id.data_type, DataType::named("bigint")); // bigserial mapped
    assert!(id.auto_increment && id.not_null);
    assert_eq!(projects.primary_key, vec![Name::from("id")]);
    assert_eq!(
        projects.attribute("slug").unwrap().data_type,
        DataType::with_params("varchar", vec![80])
    );
    assert_eq!(
        projects.attribute("created_at").unwrap().data_type,
        DataType::named("timestamptz")
    );
    assert_eq!(
        projects.attribute("tags").unwrap().data_type,
        DataType::named("text").with_modifier("array")
    );

    let issues = schema.table("issues").unwrap();
    // ALTER TABLE at the end of the dump added updated_at.
    assert!(issues.attribute("updated_at").is_some());
    assert_eq!(issues.attribute_count(), 7);
    assert_eq!(issues.foreign_keys.len(), 1);
    assert_eq!(
        issues.attribute("weight").unwrap().data_type,
        DataType::named("double")
    );
    // ALTER COLUMN SET DEFAULT applied.
    assert!(issues
        .attribute("state")
        .unwrap()
        .default
        .as_deref()
        .unwrap()
        .contains("triage"));
}

#[test]
fn sqlite_style_dump() {
    let (schema, diags) = parse_schema(&fixture("embedded_sqlite.sql"));
    assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
    assert_eq!(schema.table_count(), 3);

    let contacts = schema.table("contacts").unwrap();
    assert!(contacts.attribute("id").unwrap().auto_increment);
    assert_eq!(contacts.primary_key, vec![Name::from("id")]);
    assert_eq!(contacts.attribute_count(), 5);

    let log = schema.table("call_log").unwrap();
    assert_eq!(log.foreign_keys.len(), 1);
    assert_eq!(log.foreign_keys[0].ref_table, Name::from("contacts"));
    // Quoted table name.
    assert!(schema.table("meta").is_some());
}

#[test]
fn dumps_survive_a_diff_against_their_evolution() {
    // Pretend the blog schema evolved: one table dropped, one column added.
    let v1 = fixture("blog_mysql.sql");
    let mut v2 = v1.clone();
    v2.push_str("\nDROP TABLE wp_options;\nALTER TABLE wp_posts ADD COLUMN post_excerpt TEXT;\n");
    let (s1, _) = parse_schema(&v1);
    let (s2, _) = parse_schema(&v2);
    let d = schemachron::model::diff(&s1, &s2);
    use schemachron::model::ChangeKind;
    assert_eq!(d.count_of(ChangeKind::AttributeDeletedWithTable), 4);
    assert_eq!(d.count_of(ChangeKind::AttributeInjected), 1);
    assert_eq!(d.tables_dropped, vec![Name::from("wp_options")]);
}
