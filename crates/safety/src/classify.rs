//! The three-valued safety lattice and the per-op classifier.
//!
//! Classification is *static*: it sees the op, the schema state the op
//! applies to, and the other ops of the same batch (for rename pairing) —
//! never the data. The lattice is conservative: an op is `Lossless` only
//! when the analyzer can synthesize an inverse and prove, by replay, that
//! no row value can be destroyed.

use schemachron_dialect::{DiffOp, MigrationPlan};
use schemachron_model::{Attribute, DataType, Schema};

/// The three-valued safety lattice, ordered by badness.
///
/// The join of a batch is the maximum of its ops' classes, so a plan is as
/// dangerous as its worst operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Safety {
    /// Invertible from the schema alone: no row value can be destroyed and
    /// the inverse `DiffOp` batch is derivable from the op itself (plus
    /// the pre-state schema for view drops).
    Lossless,
    /// Invertible only with provenance: the schema round-trips, but row
    /// values need a side record to restore — narrowing casts, cross-family
    /// conversions, `NOT NULL` tightenings, rename-shaped column drops.
    Recoverable,
    /// No inverse exists: dropped rows or column values are gone.
    Lossy,
}

impl Safety {
    /// Lowercase tag used in JSON, diagnostics and golden files.
    pub fn tag(self) -> &'static str {
        match self {
            Safety::Lossless => "lossless",
            Safety::Recoverable => "recoverable",
            Safety::Lossy => "lossy",
        }
    }

    /// Lattice join: the worse of the two classes.
    pub fn join(self, other: Safety) -> Safety {
        self.max(other)
    }
}

/// A classified op: its lattice value plus the human-readable grounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Classification {
    /// The lattice value.
    pub safety: Safety,
    /// Why the op landed there (deterministic, rendered in diagnostics).
    pub reason: String,
}

impl Classification {
    fn new(safety: Safety, reason: impl Into<String>) -> Self {
        Classification {
            safety,
            reason: reason.into(),
        }
    }
}

/// How a column's declared type moves under an `AlterColumn`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TypeChange {
    /// Same declared type (the alter touches nullability/default/identity).
    Identity,
    /// Strictly more capacity within the same family; every value survives.
    Widening,
    /// Less capacity within the same family; values can be truncated.
    Narrowing,
    /// A cross-family cast (e.g. `varchar` → `timestamp`); the conversion
    /// is not guaranteed to round-trip.
    Conversion,
}

/// Rank within the integer-width family; `None` for non-integers.
///
/// Restated from the lint flow pass on purpose: the safety lattice and the
/// L007 narrowing note must agree *by construction being independent*, the
/// same discipline the H-pass auditor applies to cache keys.
fn int_rank(base: &str) -> Option<u8> {
    match base {
        "tinyint" => Some(0),
        "smallint" => Some(1),
        "mediumint" => Some(2),
        "int" | "integer" => Some(3),
        "bigint" => Some(4),
        _ => None,
    }
}

fn is_textual(base: &str) -> bool {
    matches!(base, "varchar" | "char" | "character" | "text")
}

fn type_change(old: &DataType, new: &DataType) -> TypeChange {
    if old == new {
        return TypeChange::Identity;
    }
    if let (Some(o), Some(n)) = (int_rank(old.base()), int_rank(new.base())) {
        // Same rank but a different spelling or modifier set (e.g. losing
        // `unsigned`) changes the value domain: treat it as a conversion.
        return match n.cmp(&o) {
            std::cmp::Ordering::Greater => TypeChange::Widening,
            std::cmp::Ordering::Less => TypeChange::Narrowing,
            std::cmp::Ordering::Equal => TypeChange::Conversion,
        };
    }
    if is_textual(old.base()) && is_textual(new.base()) {
        // TEXT is unbounded; parameterless char types default to length 1.
        let cap = |t: &DataType| -> i64 {
            if t.base() == "text" {
                i64::MAX
            } else {
                t.params().first().copied().unwrap_or(1)
            }
        };
        return if cap(new) < cap(old) {
            TypeChange::Narrowing
        } else {
            TypeChange::Widening
        };
    }
    if old.base() == "decimal" && new.base() == "decimal" {
        let precision = |t: &DataType| t.params().first().copied().unwrap_or(10);
        return if precision(new) < precision(old) {
            TypeChange::Narrowing
        } else {
            TypeChange::Widening
        };
    }
    TypeChange::Conversion
}

/// Finds the `AddColumn` of `batch` that makes `DropColumn {table, column}`
/// a rename: same table, same declared type as the dropped attribute, and a
/// name the table did not already have.
pub(crate) fn rename_partner<'a>(
    batch: &'a [DiffOp],
    table: &schemachron_model::Name,
    dropped: &Attribute,
    before: &Schema,
) -> Option<&'a Attribute> {
    batch.iter().find_map(|other| match other {
        DiffOp::AddColumn {
            table: add_table,
            attr,
        } if add_table == table
            && attr.name != dropped.name
            && attr.data_type == dropped.data_type
            && before
                .table_of(table)
                .is_none_or(|t| t.attribute_of(&attr.name).is_none()) =>
        {
            Some(attr)
        }
        _ => None,
    })
}

/// Classifies one op against the schema state it applies to.
///
/// `before` is the schema immediately preceding the whole batch and `batch`
/// is every op of the same version transition — both are needed to tell a
/// rename-shaped `drop_column` (Recoverable) from a plain one (Lossy).
pub fn classify_op(op: &DiffOp, before: &Schema, batch: &[DiffOp]) -> Classification {
    match op {
        DiffOp::CreateTable(_)
        | DiffOp::AddColumn { .. }
        | DiffOp::CreateView(_)
        | DiffOp::AddForeignKey { .. }
        | DiffOp::AddUnique { .. } => Classification::new(
            Safety::Lossless,
            "additive change; the inverse drops exactly what was added",
        ),
        DiffOp::SetPrimaryKey { .. } => Classification::new(
            Safety::Lossless,
            "carries both key states; the inverse swaps them back",
        ),
        DiffOp::DropForeignKey { .. } | DiffOp::DropUnique { .. } => Classification::new(
            Safety::Lossless,
            "constraint drop carries the full definition; the inverse re-adds it",
        ),
        DiffOp::DropView(_) => Classification::new(
            Safety::Lossless,
            "views hold no rows; the definition is restored from the prior schema",
        ),
        DiffOp::AlterColumn { from, to, .. } => classify_alter(from, to),
        DiffOp::DropColumn { table, column } => {
            let dropped = before.table_of(table).and_then(|t| t.attribute_of(column));
            if let Some(attr) = dropped {
                if let Some(partner) = rename_partner(batch, table, attr, before) {
                    return Classification::new(
                        Safety::Recoverable,
                        format!(
                            "paired with `add_column {}.{}` of the same type — a \
                             rename-shaped move, invertible given provenance \
                             linking the two columns",
                            table.as_str(),
                            partner.name.as_str(),
                        ),
                    );
                }
            }
            Classification::new(
                Safety::Lossy,
                "column values are destroyed with no inverse",
            )
        }
        DiffOp::DropTable(_) => Classification::new(
            Safety::Lossy,
            "table rows are destroyed with no inverse",
        ),
    }
}

fn classify_alter(from: &Attribute, to: &Attribute) -> Classification {
    match type_change(&from.data_type, &to.data_type) {
        TypeChange::Narrowing => Classification::new(
            Safety::Recoverable,
            format!(
                "narrowing cast {} -> {} can truncate; inverting needs a \
                 provenance side table of the clipped values",
                from.data_type, to.data_type,
            ),
        ),
        TypeChange::Conversion => Classification::new(
            Safety::Recoverable,
            format!(
                "cross-family cast {} -> {} is not guaranteed to round-trip; \
                 inverting needs provenance of the original values",
                from.data_type, to.data_type,
            ),
        ),
        TypeChange::Identity | TypeChange::Widening => {
            if to.not_null && !from.not_null {
                Classification::new(
                    Safety::Recoverable,
                    "NOT NULL tightening coerces existing NULLs; inverting \
                     needs provenance of which rows held NULL",
                )
            } else {
                Classification::new(
                    Safety::Lossless,
                    "widening or metadata-only change; the inverse is the mirrored alter",
                )
            }
        }
    }
}

/// A whole-plan verdict: the lattice join of the plan's ops plus the first
/// op that forced the class.
#[derive(Clone, Debug)]
pub struct PlanSafety {
    /// The join of every op's class (rebuilds force `Lossy`).
    pub safety: Safety,
    /// Descriptor of the first op (or rebuilt table) at the join class;
    /// `None` when the plan is `Lossless`.
    pub offender: Option<String>,
    /// Why the offender landed there; `None` when the plan is `Lossless`.
    pub reason: Option<String>,
}

/// Classifies a whole migration plan: the lattice join of its ops, with the
/// rebuild fallback pinned to `Lossy` — a rebuild is DROP + CREATE however
/// faithfully the copy script is phrased.
pub fn classify_plan(plan: &MigrationPlan, ops: &[DiffOp], before: &Schema) -> PlanSafety {
    if let Some(table) = plan.rebuilds.first() {
        return PlanSafety {
            safety: Safety::Lossy,
            offender: Some(format!("rebuild_table {table}")),
            reason: Some(
                "a table rebuild is DROP + CREATE; the dropped rows have no inverse".to_owned(),
            ),
        };
    }
    let mut worst = PlanSafety {
        safety: Safety::Lossless,
        offender: None,
        reason: None,
    };
    for op in ops {
        let c = classify_op(op, before, ops);
        if c.safety > worst.safety {
            worst = PlanSafety {
                safety: c.safety,
                offender: Some(op.describe()),
                reason: Some(c.reason),
            };
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemachron_model::{Name, Table};

    fn attr(name: &str, ty: DataType) -> Attribute {
        Attribute::new(name, ty)
    }

    #[test]
    fn lattice_orders_and_joins() {
        assert!(Safety::Lossless < Safety::Recoverable);
        assert!(Safety::Recoverable < Safety::Lossy);
        assert_eq!(Safety::Lossless.join(Safety::Lossy), Safety::Lossy);
        assert_eq!(Safety::Recoverable.join(Safety::Lossless), Safety::Recoverable);
        assert_eq!(Safety::Lossy.tag(), "lossy");
    }

    #[test]
    fn additive_ops_are_lossless() {
        let empty = Schema::default();
        let op = DiffOp::CreateTable(Table::new("t"));
        assert_eq!(classify_op(&op, &empty, &[]).safety, Safety::Lossless);
        let op = DiffOp::AddColumn {
            table: Name::new("t"),
            attr: attr("c", DataType::named("int")),
        };
        assert_eq!(classify_op(&op, &empty, &[]).safety, Safety::Lossless);
    }

    #[test]
    fn drops_are_lossy() {
        let mut schema = Schema::default();
        let mut t = Table::new("t");
        t.push_attribute(attr("c", DataType::named("int")));
        schema.insert_table(t);
        let drop_table = DiffOp::DropTable(Name::new("t"));
        assert_eq!(classify_op(&drop_table, &schema, &[]).safety, Safety::Lossy);
        let drop_col = DiffOp::DropColumn {
            table: Name::new("t"),
            column: Name::new("c"),
        };
        assert_eq!(classify_op(&drop_col, &schema, &[]).safety, Safety::Lossy);
    }

    #[test]
    fn rename_shaped_drop_is_recoverable() {
        let mut schema = Schema::default();
        let mut t = Table::new("t");
        t.push_attribute(attr("old_name", DataType::with_params("varchar", vec![64])));
        schema.insert_table(t);
        let batch = vec![
            DiffOp::DropColumn {
                table: Name::new("t"),
                column: Name::new("old_name"),
            },
            DiffOp::AddColumn {
                table: Name::new("t"),
                attr: attr("new_name", DataType::with_params("varchar", vec![64])),
            },
        ];
        let c = classify_op(&batch[0], &schema, &batch);
        assert_eq!(c.safety, Safety::Recoverable);
        assert!(c.reason.contains("rename-shaped"), "{}", c.reason);
        // A differently-typed add is no rename: the drop stays lossy.
        let unrelated = vec![
            batch[0].clone(),
            DiffOp::AddColumn {
                table: Name::new("t"),
                attr: attr("new_name", DataType::named("bigint")),
            },
        ];
        assert_eq!(classify_op(&unrelated[0], &schema, &unrelated).safety, Safety::Lossy);
    }

    #[test]
    fn alter_column_spans_the_lattice() {
        let empty = Schema::default();
        let alter = |from: DataType, to: DataType| DiffOp::AlterColumn {
            table: Name::new("t"),
            from: attr("c", from),
            to: attr("c", to),
        };
        // Widening: lossless.
        let widen = alter(DataType::named("int"), DataType::named("bigint"));
        assert_eq!(classify_op(&widen, &empty, &[]).safety, Safety::Lossless);
        // Narrowing: recoverable.
        let narrow = alter(
            DataType::with_params("varchar", vec![255]),
            DataType::with_params("varchar", vec![64]),
        );
        assert_eq!(classify_op(&narrow, &empty, &[]).safety, Safety::Recoverable);
        // Cross-family conversion: recoverable.
        let convert = alter(DataType::named("bigint"), DataType::named("timestamp"));
        assert_eq!(classify_op(&convert, &empty, &[]).safety, Safety::Recoverable);
        // NOT NULL tightening on an unchanged type: recoverable.
        let tighten = DiffOp::AlterColumn {
            table: Name::new("t"),
            from: attr("c", DataType::named("int")),
            to: attr("c", DataType::named("int")).not_null(),
        };
        assert_eq!(classify_op(&tighten, &empty, &[]).safety, Safety::Recoverable);
    }

    #[test]
    fn text_caps_and_decimal_precision_follow_the_flow_lint() {
        assert_eq!(
            type_change(&DataType::named("text"), &DataType::with_params("varchar", vec![255])),
            TypeChange::Narrowing
        );
        assert_eq!(
            type_change(&DataType::with_params("varchar", vec![64]), &DataType::named("text")),
            TypeChange::Widening
        );
        assert_eq!(
            type_change(
                &DataType::with_params("decimal", vec![10, 2]),
                &DataType::with_params("decimal", vec![6, 2]),
            ),
            TypeChange::Narrowing
        );
    }
}
