//! Regenerates Figure 1 (nomenclature chart).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::figure1(&ctx);
    emit(
        "exp_figure1",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
