//! Work scheduling for corpus ingestion.
//!
//! Every corpus project is ingested independently — the materializer seeds
//! its PRNG per project name (`seed ^ name_hash(name)`), so no project's
//! output depends on any other's. That makes ingestion embarrassingly
//! parallel, and this module provides the fan-out: [`par_map`] distributes
//! items over scoped worker threads with an atomic work-stealing-style
//! index counter, then reassembles results **in input order**, so parallel
//! and serial runs produce identical corpora.
//!
//! The worker count is resolved by [`effective_jobs`]:
//!
//! 1. a process-wide override installed with [`set_jobs`] (the CLI's
//!    `--jobs` flag),
//! 2. else the `SCHEMACHRON_JOBS` environment variable,
//! 3. else [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide jobs override; `0` means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide worker-count override (`None` clears it),
/// taking precedence over `SCHEMACHRON_JOBS` and auto-detection.
pub fn set_jobs(jobs: Option<NonZeroUsize>) {
    JOBS_OVERRIDE.store(jobs.map_or(0, NonZeroUsize::get), Ordering::Relaxed);
}

/// The worker count corpus generation will use: the [`set_jobs`] override,
/// else `SCHEMACHRON_JOBS`, else available parallelism (min 1).
pub fn effective_jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("SCHEMACHRON_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Minimum number of items each worker must have to justify spawning
/// threads at all. Below `jobs * MIN_ITEMS_PER_WORKER` items, thread
/// spawn/teardown and slot locking outweigh the per-item pipeline work
/// (`BENCH_pipeline.json` recorded a 0.84× "speedup" for the 151-project
/// corpus on two workers) and [`par_map`] runs serially instead. Output is
/// identical on either side of the threshold — only the schedule changes.
pub const MIN_ITEMS_PER_WORKER: usize = 128;

/// The worker count [`par_map`] will actually use for `len` items and a
/// requested `jobs`: `0..=1` means the map runs inline on the caller's
/// thread (too little work to amortize thread spawns), otherwise the
/// requested count capped by the item count.
pub fn effective_workers(len: usize, jobs: usize) -> usize {
    if jobs <= 1 || len < 2 || len < jobs.min(len) * MIN_ITEMS_PER_WORKER {
        1
    } else {
        jobs.min(len)
    }
}

/// Maps `f` over `items` on `jobs` scoped worker threads, preserving input
/// order in the output.
///
/// Workers pull the next unclaimed index from a shared atomic counter
/// (self-balancing: a worker stuck on an expensive project simply claims
/// fewer items), so the schedule adapts to uneven item costs without any
/// partitioning heuristics. With `jobs <= 1`, fewer than two items, or a
/// batch too small to amortize thread spawns (see [`effective_workers`] and
/// [`MIN_ITEMS_PER_WORKER`]) the map runs inline on the caller's thread.
///
/// # Panics
///
/// Propagates a panic from `f`; remaining items may be skipped.
pub fn par_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = effective_workers(items.len(), jobs);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Wrap the items so workers can claim them by index without moving the
    // vector: each slot is taken exactly once (the counter hands out each
    // index to exactly one worker).
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let next = AtomicUsize::new(0);

    let mut results: Vec<Option<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= slots.len() {
                            break;
                        }
                        // `f` runs outside the lock, so the guard can only
                        // be poisoned mid-`take`, which cannot panic.
                        let Some(item) = slots[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .take()
                        else {
                            unreachable!("the atomic counter hands out index {i} exactly once");
                        };
                        out.push((i, f(item)));
                    }
                    out
                })
            })
            .collect();

        let mut merged: Vec<Option<R>> = (0..slots.len()).map(|_| None).collect();
        for h in handles {
            // Re-raise a worker panic with its original payload instead of
            // wrapping it in a second, less informative one.
            match h.join() {
                Ok(batch) => {
                    for (i, r) in batch {
                        merged[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        merged
    });

    results
        .iter_mut()
        .map(|slot| {
            let Some(r) = slot.take() else {
                unreachable!("every index was produced by exactly one worker");
            };
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Big enough that 8 workers clear the serial-fallback threshold.
    const BIG: usize = MIN_ITEMS_PER_WORKER * 8;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..BIG).collect();
        assert_eq!(effective_workers(BIG, 8), 8, "meant to hit the pool");
        let out = par_map(items, 8, |i| i * 3);
        assert_eq!(out, (0..BIG).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..BIG as u64).collect();
        let serial = par_map(items.clone(), 1, |i| i.wrapping_mul(0x9e37_79b9));
        let parallel = par_map(items, 5, |i| i.wrapping_mul(0x9e37_79b9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_degenerate_sizes() {
        assert_eq!(par_map(Vec::<u8>::new(), 4, |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![7], 4, |x| x + 1), vec![8]);
        assert_eq!(par_map(vec![1, 2], 16, |x| x * 2), vec![2, 4]);
    }

    #[test]
    fn small_batches_fall_back_to_serial() {
        // The 151-card corpus on 2 workers sits below the threshold: the
        // measured parallel run was *slower* than serial there.
        assert_eq!(effective_workers(151, 2), 1);
        assert_eq!(effective_workers(2 * MIN_ITEMS_PER_WORKER - 1, 2), 1);
        // At and above the threshold the requested pool is used.
        assert_eq!(effective_workers(2 * MIN_ITEMS_PER_WORKER, 2), 2);
        assert_eq!(effective_workers(BIG, 8), 8);
        // Degenerate shapes stay inline regardless of size.
        assert_eq!(effective_workers(0, 8), 1);
        assert_eq!(effective_workers(1, 8), 1);
        assert_eq!(effective_workers(BIG, 1), 1);
    }

    #[test]
    fn threshold_crossing_is_invisible_in_output() {
        // Identical input → identical output on either side of the serial
        // fallback, for the exact sizes that straddle it.
        let cut = 2 * MIN_ITEMS_PER_WORKER;
        for n in [cut - 1, cut, cut + 1] {
            let items: Vec<u64> = (0..n as u64).collect();
            let expect: Vec<u64> = items.iter().map(|i| i * 7 + 1).collect();
            assert_eq!(par_map(items, 2, |i| i * 7 + 1), expect, "size {n}");
        }
    }

    #[test]
    fn override_beats_env_and_detection() {
        set_jobs(NonZeroUsize::new(3));
        assert_eq!(effective_jobs(), 3);
        set_jobs(None);
        assert!(effective_jobs() >= 1);
    }
}
