//! Figures 1, 2, 3, 5, 6, 7.

use std::collections::BTreeMap;

use serde::Serialize;

use schemachron_chart::ascii::{render_annotated, AsciiChart};
use schemachron_core::predict::BirthBucket;
use schemachron_core::validate::{completeness, disjointedness, domain_coverage, DomainCell};
use schemachron_core::Pattern;
use schemachron_stats::spearman_matrix;

use crate::context::ExpContext;
use crate::report::{cell, pct, text_table};

// --------------------------------------------------------------- Figure 1

/// Figure 1 — the nomenclature chart: one project annotated with schema
/// birth, top-band attainment, vault and tail.
#[derive(Clone, Debug, Serialize)]
pub struct Figure1 {
    /// The exemplar project's name.
    pub project: String,
    /// The rendered chart plus annotations.
    pub rendering: String,
}

/// Regenerates Figure 1 using a Radical Sign exemplar (early birth, sharp
/// vault, long tail — the shape the paper annotates).
pub fn figure1(ctx: &ExpContext) -> Figure1 {
    let p = ctx
        .corpus
        .of_pattern(Pattern::RadicalSign)
        .find(|p| p.metrics.has_single_vault && p.metrics.birth_index > 0)
        .expect("the corpus always contains vaulted radical signs");
    let m = &p.metrics;
    let mut rendering = render_annotated(
        &AsciiChart::default(),
        &p.history,
        m.birth_pct_pup,
        m.topband_pct_pup,
        m.has_single_vault,
    );
    rendering.push_str(&format!(
        "\nschema birth:        month {} ({:.0}% of PUP), {:.0}% of total activity\n\
         top-band attained:   month {} ({:.0}% of PUP)\n\
         growth (birth..top): {:.0}% of PUP — {}\n\
         tail (top..end):     {:.0}% of PUP of near-zero change\n",
        m.birth_index,
        m.birth_pct_pup * 100.0,
        m.birth_volume_pct_total * 100.0,
        m.topband_index,
        m.topband_pct_pup * 100.0,
        m.interval_birth_to_top_pct * 100.0,
        if m.has_single_vault {
            "a VAULT (< 10%)"
        } else {
            "no vault"
        },
        m.interval_top_to_end_pct * 100.0,
    ));
    Figure1 {
        project: p.card.name.clone(),
        rendering,
    }
}

impl Figure1 {
    /// Renders the figure.
    pub fn render(&self) -> String {
        format!(
            "Figure 1 — nomenclature of schema/source histories ({})\n\n{}",
            self.project, self.rendering
        )
    }
}

// --------------------------------------------------------------- Figure 2

/// The time-related metrics correlated in Figure 2, in column order.
pub const FIGURE2_METRICS: [&str; 8] = [
    "BirthVolume_pctTotal",
    "PointOfBirth_pctPUP",
    "PointTopBand_pctPUP",
    "IntervalBirthToTop_pctPUP",
    "IntervalTopToEnd_pctPUP",
    "ActiveGrowthMonths",
    "Active_pctGrowth",
    "Active_pctPUP",
];

/// Figure 2 — Spearman correlations of the time-related metrics.
#[derive(Clone, Debug, Serialize)]
pub struct Figure2 {
    /// Metric names, aligned with the matrix.
    pub metrics: Vec<String>,
    /// The full correlation matrix.
    pub matrix: Vec<Vec<f64>>,
}

/// Regenerates Figure 2.
pub fn figure2(ctx: &ExpContext) -> Figure2 {
    let projects = ctx.corpus.projects();
    let columns: Vec<Vec<f64>> = vec![
        projects
            .iter()
            .map(|p| p.metrics.birth_volume_pct_total)
            .collect(),
        projects.iter().map(|p| p.metrics.birth_pct_pup).collect(),
        projects.iter().map(|p| p.metrics.topband_pct_pup).collect(),
        projects
            .iter()
            .map(|p| p.metrics.interval_birth_to_top_pct)
            .collect(),
        projects
            .iter()
            .map(|p| p.metrics.interval_top_to_end_pct)
            .collect(),
        projects
            .iter()
            .map(|p| p.metrics.active_growth_months as f64)
            .collect(),
        projects
            .iter()
            .map(|p| p.metrics.active_pct_growth)
            .collect(),
        projects.iter().map(|p| p.metrics.active_pct_pup).collect(),
    ];
    Figure2 {
        metrics: FIGURE2_METRICS.iter().map(|s| (*s).to_owned()).collect(),
        matrix: spearman_matrix(&columns),
    }
}

impl Figure2 {
    /// Correlation of two metrics by name.
    pub fn rho(&self, a: &str, b: &str) -> f64 {
        let i = self.metrics.iter().position(|m| m == a).expect("metric a");
        let j = self.metrics.iter().position(|m| m == b).expect("metric b");
        self.matrix[i][j]
    }

    /// Renders the matrix plus the paper's headline correlations.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 2 — Spearman correlations of time-related metrics\n\n");
        let header: Vec<String> = std::iter::once(cell(""))
            .chain((0..self.metrics.len()).map(|i| cell(format!("m{i}"))))
            .collect();
        let rows: Vec<Vec<String>> = self
            .matrix
            .iter()
            .enumerate()
            .map(|(i, row)| {
                std::iter::once(cell(format!("m{i} {}", self.metrics[i])))
                    .chain(row.iter().map(|v| cell(format!("{v:+.2}"))))
                    .collect()
            })
            .collect();
        out.push_str(&text_table(&header, &rows));
        out.push_str(&format!(
            "\nheadline relations (paper):\n\
             rho(PointTopBand, IntervalTopToEnd) = {:+.2}   (paper: strongly anti-correlated)\n\
             rho(PointOfBirth, PointTopBand)     = {:+.2}   (paper: ~+0.61)\n\
             rho(BirthVolume, IntervalBirthToTop)= {:+.2}   (paper: anti-correlated)\n\
             rho(ActiveGrowthMonths, Active_pctPUP) = {:+.2} (paper: tightly related)\n",
            self.rho("PointTopBand_pctPUP", "IntervalTopToEnd_pctPUP"),
            self.rho("PointOfBirth_pctPUP", "PointTopBand_pctPUP"),
            self.rho("BirthVolume_pctTotal", "IntervalBirthToTop_pctPUP"),
            self.rho("ActiveGrowthMonths", "Active_pctPUP"),
        ));
        out
    }
}

// --------------------------------------------------------------- Figure 3

/// Figure 3 — one exemplar cumulative chart per pattern.
#[derive(Clone, Debug, Serialize)]
pub struct Figure3 {
    /// `(pattern, project name, ASCII chart)` triples, in pattern order.
    pub charts: Vec<(Pattern, String, String)>,
}

/// Regenerates Figure 3 (the first non-exception member of each pattern).
pub fn figure3(ctx: &ExpContext) -> Figure3 {
    let chart = AsciiChart {
        width: 56,
        height: 10,
    };
    let charts = Pattern::ALL
        .iter()
        .map(|&p| {
            let exemplar = ctx
                .corpus
                .of_pattern(p)
                .find(|x| !x.exception)
                .expect("every pattern has clean members");
            (
                p,
                exemplar.card.name.clone(),
                chart.render(&exemplar.history),
            )
        })
        .collect();
    Figure3 { charts }
}

impl Figure3 {
    /// Renders all eight charts.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 3 — example time-related patterns\n");
        for (p, name, art) in &self.charts {
            out.push_str(&format!("\n[{}] {}\n{art}", p.name(), name));
        }
        out
    }
}

// --------------------------------------------------------------- Figure 5

/// Figure 5 — the decision tree separating the patterns, with its training
/// error (the paper's tree misclassifies 4 of 151).
#[derive(Clone, Debug, Serialize)]
pub struct Figure5 {
    /// Indented text form of the tree.
    pub tree_rendering: String,
    /// Number of leaves.
    pub leaves: usize,
    /// Tree depth.
    pub depth: usize,
    /// Misclassified projects (name, assigned, predicted).
    pub misclassified: Vec<(String, Pattern, Pattern)>,
}

/// Regenerates Figure 5.
pub fn figure5(ctx: &ExpContext) -> Figure5 {
    let tree = ctx.decision_tree();
    let features = ctx.feature_matrix();
    let misclassified = ctx
        .corpus
        .projects()
        .iter()
        .zip(features)
        .filter_map(|(p, f)| {
            let predicted = Pattern::ALL[tree.predict(f)];
            (predicted != p.assigned).then(|| (p.card.name.clone(), p.assigned, predicted))
        })
        .collect();
    Figure5 {
        tree_rendering: ctx.render_tree(tree),
        leaves: tree.leaf_count(),
        depth: tree.depth(),
        misclassified,
    }
}

impl Figure5 {
    /// Renders the tree and its error report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 5 — decision tree over the quantized labels \
             ({} leaves, depth {})\n\n{}",
            self.leaves, self.depth, self.tree_rendering
        );
        out.push_str(&format!(
            "\nmisclassified: {} of 151 (paper: 4 of 151)\n",
            self.misclassified.len()
        ));
        for (name, assigned, predicted) in &self.misclassified {
            out.push_str(&format!(
                "  {name}: assigned {assigned}, tree says {predicted}\n"
            ));
        }
        out
    }
}

// --------------------------------------------------------------- Figure 6

/// Figure 6 — coverage of the label space by the patterns.
#[derive(Clone, Debug, Serialize)]
pub struct Figure6 {
    /// Populated cells: (birth, top, interval, agm-bucket) → pattern census.
    pub cells: Vec<(String, BTreeMap<String, usize>)>,
    /// Populated cell count.
    pub populated: usize,
    /// Cells hosting more than one pattern.
    pub overlap_cells: usize,
    /// Attainable cells in the whole space.
    pub attainable: usize,
    /// Total cells in the whole space.
    pub total_cells: usize,
}

/// Regenerates Figure 6.
pub fn figure6(ctx: &ExpContext) -> Figure6 {
    let items = ctx.corpus.annotated_labels();
    let coverage = domain_coverage(&items);
    let dis = disjointedness(&items);
    let comp = completeness(&items);
    let cells = coverage
        .iter()
        .map(|(cell, census)| {
            (
                cell_name(cell),
                census
                    .per_pattern
                    .iter()
                    .map(|(p, n)| (p.name().to_owned(), *n))
                    .collect(),
            )
        })
        .collect();
    Figure6 {
        cells,
        populated: dis.populated_cells,
        overlap_cells: dis.overlap_cells,
        attainable: comp.attainable_cells,
        total_cells: comp.total_cells,
    }
}

fn cell_name(c: &DomainCell) -> String {
    format!(
        "{}/{}/{}/agm:{}",
        c.birth.label(),
        c.top.label(),
        c.interval.label(),
        ["0", "1-3", ">3"][c.agm_bucket as usize]
    )
}

impl Figure6 {
    /// Renders the coverage map.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 6 — active-domain coverage: {} populated cells \
             ({} overlaps) of {} attainable / {} total\n\n",
            self.populated, self.overlap_cells, self.attainable, self.total_cells
        );
        let header = vec![cell("cell (birth/top/interval/agm)"), cell("patterns")];
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|(name, census)| {
                let who = census
                    .iter()
                    .map(|(p, n)| format!("{p}({n})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                vec![cell(name), who]
            })
            .collect();
        out.push_str(&text_table(&header, &rows));
        out
    }
}

// --------------------------------------------------------------- Figure 7

/// Figure 7 — probability of each pattern given the birth-month bucket.
#[derive(Clone, Debug, Serialize)]
pub struct Figure7 {
    /// Per-pattern rows: overall count, then (count, probability) per bucket.
    pub rows: Vec<Figure7Row>,
    /// Bucket totals (M0, M1–6, M7–12, >M12).
    pub bucket_totals: [usize; 4],
}

/// One Figure 7 row.
#[derive(Clone, Debug, Serialize)]
pub struct Figure7Row {
    /// The pattern.
    pub pattern: Pattern,
    /// Overall project count.
    pub overall: usize,
    /// Overall probability.
    pub overall_prob: f64,
    /// `(count, P(pattern | bucket))` for each bucket in
    /// [`BirthBucket::ALL`] order.
    pub per_bucket: [(usize, f64); 4],
}

/// Regenerates Figure 7 from the fitted predictor.
pub fn figure7(ctx: &ExpContext) -> Figure7 {
    let pred = ctx.birth_predictor();
    let overall = pred.overall_probabilities();
    let rows = Pattern::ALL
        .iter()
        .map(|&p| {
            let mut per_bucket = [(0usize, 0.0f64); 4];
            for (i, &b) in BirthBucket::ALL.iter().enumerate() {
                per_bucket[i] = (pred.count(p, b), pred.probabilities(b)[p.ordinal()]);
            }
            Figure7Row {
                pattern: p,
                overall: BirthBucket::ALL.iter().map(|&b| pred.count(p, b)).sum(),
                overall_prob: overall[p.ordinal()],
                per_bucket,
            }
        })
        .collect();
    let mut bucket_totals = [0usize; 4];
    for (i, &b) in BirthBucket::ALL.iter().enumerate() {
        bucket_totals[i] = pred.bucket_total(b);
    }
    Figure7 {
        rows,
        bucket_totals,
    }
}

impl Figure7 {
    /// Renders the probability table (Fig. 7 layout).
    pub fn render(&self) -> String {
        let header = vec![
            cell("Pattern"),
            cell("overall"),
            cell("prob"),
            cell("M0"),
            cell("prob"),
            cell("M1-6"),
            cell("prob"),
            cell("M7-12"),
            cell("prob"),
            cell(">M12"),
            cell("prob"),
        ];
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut v = vec![cell(r.pattern.name()), cell(r.overall), pct(r.overall_prob)];
                for (n, p) in r.per_bucket {
                    v.push(cell(n));
                    v.push(pct(p));
                }
                v
            })
            .collect();
        let mut totals = vec![cell("TOTAL"), cell(151), pct(1.0)];
        for t in self.bucket_totals {
            totals.push(cell(t));
            totals.push(pct(if t > 0 { 1.0 } else { 0.0 }));
        }
        rows.push(totals);
        format!(
            "Figure 7 — P(pattern | point of schema birth)\n\n{}",
            text_table(&header, &rows)
        )
    }
}
