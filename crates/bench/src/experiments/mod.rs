//! One module per reproduced table/figure; see the crate docs for the index.

mod ablation;
mod beyond;
mod figures;
mod forecast;
mod safety;
mod sections;
mod tables;

pub use ablation::{ablation, Ablation, SweepPoint};
pub use beyond::{co_evolution_exp, tables_exp, CoEvolutionExp, FkSplit, TablesExp};
pub use figures::{
    figure1, figure2, figure3, figure5, figure6, figure7, Figure1, Figure2, Figure3, Figure5,
    Figure6, Figure7,
};
pub use forecast::{forecast, Forecast, HorizonResult};
pub use safety::{safety_exp, FamilySplit, SafetyExp};
pub use sections::{
    family_mass, stats34, stats52, stats61, stats62, stats63, Stats34, Stats52, Stats61, Stats62,
    Stats63,
};
pub use tables::{figure4, table1, table2, Figure4, Table1, Table2};

use crate::context::ExpContext;

/// The valid experiment ids, in paper order — the single registry shared by
/// the CLI, the `exp_*` binaries and the HTTP service.
pub const EXPERIMENT_IDS: [&str; 19] = [
    "exp_table1",
    "exp_table2",
    "exp_figure1",
    "exp_figure2",
    "exp_figure3",
    "exp_figure4",
    "exp_figure5",
    "exp_figure6",
    "exp_figure7",
    "exp_stats34",
    "exp_stats52",
    "exp_stats61",
    "exp_stats62",
    "exp_stats63",
    "exp_ablation",
    "exp_tables",
    "exp_coevolution",
    "exp_forecast",
    "exp_safety",
];

/// Runs experiment `id` against `ctx` and returns its plain-text rendering
/// plus the JSON form persisted under `target/experiments/` and served by
/// `schemachron serve`. `None` for an unknown id (see [`EXPERIMENT_IDS`]).
pub fn run_experiment(id: &str, ctx: &ExpContext) -> Option<(String, serde_json::Value)> {
    macro_rules! case {
        ($f:ident) => {{
            let r = $f(ctx);
            (r.render(), serde_json::to_value(&r).expect("serializable"))
        }};
    }
    Some(match id {
        "exp_table1" => case!(table1),
        "exp_table2" => case!(table2),
        "exp_figure1" => case!(figure1),
        "exp_figure2" => case!(figure2),
        "exp_figure3" => case!(figure3),
        "exp_figure4" => case!(figure4),
        "exp_figure5" => case!(figure5),
        "exp_figure6" => case!(figure6),
        "exp_figure7" => case!(figure7),
        "exp_stats34" => case!(stats34),
        "exp_stats52" => case!(stats52),
        "exp_stats61" => case!(stats61),
        "exp_stats62" => case!(stats62),
        "exp_stats63" => case!(stats63),
        "exp_ablation" => case!(ablation),
        "exp_tables" => case!(tables_exp),
        "exp_coevolution" => case!(co_evolution_exp),
        "exp_forecast" => case!(forecast),
        "exp_safety" => case!(safety_exp),
        _ => return None,
    })
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn every_id_runs_and_serializes() {
        let ctx = ExpContext::new(crate::DEFAULT_SEED);
        for id in EXPERIMENT_IDS {
            let (text, json) = run_experiment(id, &ctx).expect(id);
            assert!(!text.is_empty(), "{id}: empty rendering");
            assert!(
                matches!(json, serde_json::Value::Object(_)),
                "{id}: non-object JSON"
            );
        }
        assert!(run_experiment("exp_nope", &ctx).is_none());
    }
}
