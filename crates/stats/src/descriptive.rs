//! Descriptive statistics: location, spread, quantiles.

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator). Returns `NaN` for fewer
/// than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) with linear interpolation between order
/// statistics (type-7, the R default). Returns `NaN` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// The median (0.5-quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn std_dev_matches_known_value() {
        // Sample std of 2,4,4,4,5,5,7,9 is ~2.138 (population is 2).
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.13809).abs() < 1e-4, "{s}");
        assert!(std_dev(&[1.0]).is_nan());
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert!((quantile(&xs, 0.25) - 17.5).abs() < 1e-12);
        // Out-of-range q clamps.
        assert_eq!(quantile(&xs, 2.0), 40.0);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }
}
