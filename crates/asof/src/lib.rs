#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # schemachron-asof
//!
//! A **time-travel query engine** over schema histories: every
//! `ProjectHistory` becomes a queryable temporal index answering three
//! question families the batch pipeline cannot:
//!
//! * **As-of**: the full logical schema at an arbitrary [`MonthId`]
//!   ([`AsOfIndex::schema_as_of`]);
//! * **Point-in-time diff**: the model-taxonomy diff between the schemas
//!   of any two months ([`AsOfIndex::diff_between`]);
//! * **Provenance**: for any `table[.column]`, the version that introduced
//!   it and — for dead subjects — the version that ejected it
//!   ([`AsOfIndex::provenance`]), the inverse-evolution queries of the
//!   Auge provenance line of work.
//!
//! The index stores appliable [`VersionDelta`]s plus snapshot
//! [`Checkpoint`]s every K months; a lookup binary-searches the
//! checkpoints (O(log n)) and replays at most K−1 months of deltas. Built
//! indexes are content-hash-keyed artifacts in the pipeline's lock-striped
//! stage cache ([`index_for`]), chained from the project's history-stage
//! key so card edits invalidate them transitively, with panicking builds
//! quarantined exactly like pipeline stages (fault site `asof::checkpoint`).
//!
//! Presentation lives in [`render`]: shared human + JSON renderers keep
//! the CLI (`schemachron asof`), the HTTP routes
//! (`/project/{id}/schema?asof=`, `/project/{id}/diff?from=&to=`,
//! `/project/{id}/provenance/{table}[.{column}]`) and the checked-in
//! goldens byte-identical.
//!
//! [`MonthId`]: schemachron_history::MonthId

mod cached;
mod delta;
mod index;
mod provenance;
pub mod render;

pub use cached::{checkpoint_key, index_for, AsOfArtifact, CHECKPOINT_STAGE, CHECKPOINT_VERSION};
pub use delta::VersionDelta;
pub use index::{AsOfIndex, Checkpoint, DEFAULT_K_MONTHS};
pub use provenance::{Provenance, ProvenanceEvent};
