//! Early-horizon pattern forecasting — the paper's second future-work
//! direction: "the provision of solid foundations for the prediction of
//! future behavior on the basis of a meaningful model" (§7).
//!
//! An observer watches a project's first `h` months (absolute months — the
//! eventual lifespan is unknown at observation time), extracts the
//! [`horizon_features`](schemachron_core::predict::horizon_features), and a
//! decision tree predicts the project's **final** pattern. Accuracy is
//! estimated honestly with leave-one-out cross-validation and compared to
//! the majority-class baseline (always predicting Radical Sign, 41/151 ≈
//! 27%) and to the paper's own Fig. 7 oracle (birth bucket only).

use serde::Serialize;

use schemachron_core::predict::{horizon_features, BirthBucket, HORIZON_FEATURE_NAMES};
use schemachron_core::Pattern;
use schemachron_stats::{DecisionTree, TreeConfig};

use crate::context::ExpContext;
use crate::report::{cell, pct, text_table};

/// One forecasting horizon's cross-validated result.
#[derive(Clone, Debug, Serialize)]
pub struct HorizonResult {
    /// Observation window in months.
    pub horizon: usize,
    /// Leave-one-out accuracy of the decision tree on the 5 horizon
    /// features.
    pub loo_accuracy: f64,
    /// Leave-one-out accuracy of predicting the *family* only.
    pub loo_family_accuracy: f64,
}

/// The forecast experiment results.
#[derive(Clone, Debug, Serialize)]
pub struct Forecast {
    /// One row per horizon.
    pub horizons: Vec<HorizonResult>,
    /// Majority-class baseline accuracy (predict Radical Sign always).
    pub majority_baseline: f64,
    /// Accuracy of the Fig. 7 oracle (most likely pattern per birth
    /// bucket, judged on the full history's birth month).
    pub birth_oracle_accuracy: f64,
}

/// Runs the leave-one-out forecasting evaluation.
pub fn forecast(ctx: &ExpContext) -> Forecast {
    let projects = ctx.corpus.projects();
    let n = projects.len();
    let labels: Vec<usize> = projects.iter().map(|p| p.assigned.ordinal()).collect();

    // Majority baseline.
    let mut counts = [0usize; 8];
    for &l in &labels {
        counts[l] += 1;
    }
    let majority = counts.iter().copied().max().unwrap_or(0);
    let majority_baseline = majority as f64 / n as f64;

    // Fig. 7 oracle: most likely pattern per (full-history) birth bucket,
    // evaluated leave-one-out as well.
    let birth_data = ctx.corpus.birth_data();
    let mut oracle_hits = 0usize;
    for i in 0..n {
        let mut train: Vec<(usize, Pattern)> = birth_data.clone();
        train.remove(i);
        let pred = schemachron_core::predict::BirthPredictor::fit(&train);
        let bucket = BirthBucket::of(birth_data[i].0);
        let probs = pred.probabilities(bucket);
        let best = Pattern::ALL
            .iter()
            .max_by(|a, b| {
                probs[a.ordinal()]
                    .partial_cmp(&probs[b.ordinal()])
                    .expect("finite")
            })
            .copied()
            .expect("non-empty");
        if best == birth_data[i].1 {
            oracle_hits += 1;
        }
    }
    let birth_oracle_accuracy = oracle_hits as f64 / n as f64;

    let config = TreeConfig {
        max_depth: 4,
        min_samples_split: 4,
    };
    let horizons = [6usize, 12, 24, 36]
        .into_iter()
        .map(|horizon| {
            let features: Vec<Vec<u8>> = projects
                .iter()
                .map(|p| horizon_features(p.history.schema_heartbeat().values(), horizon).to_vec())
                .collect();
            let mut hits = 0usize;
            let mut family_hits = 0usize;
            for i in 0..n {
                let mut train_f = features.clone();
                let mut train_l = labels.clone();
                train_f.remove(i);
                train_l.remove(i);
                let tree = DecisionTree::fit(&train_f, &train_l, &config);
                let predicted = Pattern::ALL[tree.predict(&features[i])];
                if predicted == projects[i].assigned {
                    hits += 1;
                }
                if predicted.family() == projects[i].assigned.family() {
                    family_hits += 1;
                }
            }
            HorizonResult {
                horizon,
                loo_accuracy: hits as f64 / n as f64,
                loo_family_accuracy: family_hits as f64 / n as f64,
            }
        })
        .collect();

    Forecast {
        horizons,
        majority_baseline,
        birth_oracle_accuracy,
    }
}

impl Forecast {
    /// Renders the forecast table.
    pub fn render(&self) -> String {
        let header = vec![
            cell("observation horizon"),
            cell("LOO pattern accuracy"),
            cell("LOO family accuracy"),
        ];
        let rows: Vec<Vec<String>> = self
            .horizons
            .iter()
            .map(|h| {
                vec![
                    cell(format!("first {} months", h.horizon)),
                    pct(h.loo_accuracy),
                    pct(h.loo_family_accuracy),
                ]
            })
            .collect();
        format!(
            "Forecast — predicting the final pattern from early observation \
             (beyond the paper)\n\nfeatures: {}\n\n{}\n\
             baselines: majority class {} · Fig. 7 birth-bucket oracle {}\n",
            HORIZON_FEATURE_NAMES.join(", "),
            text_table(&header, &rows),
            pct(self.majority_baseline),
            pct(self.birth_oracle_accuracy),
        )
    }
}
