//! Minimal date handling at the study's granule: the **month**.
//!
//! The study aggregates all maintenance activity by month (§3.2), so a full
//! calendar implementation is unnecessary; [`MonthId`] is a flat month
//! counter with simple arithmetic, and [`Date`] is a calendar date used for
//! ingestion (commit timestamps, file names).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A flat month counter: `year * 12 + (month - 1)`.
///
/// Differences between `MonthId`s are exact month distances, which is all
/// the study's time arithmetic needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MonthId(pub i32);

impl MonthId {
    /// Builds a `MonthId` from a calendar year and 1-based month.
    ///
    /// For **trusted internal callers** only: the month-range check is a
    /// `debug_assert!`, so `from_ym(2009, 13)` silently yields 2010-01 in
    /// release builds. Anything parsing external input (CLI flags, HTTP
    /// query strings) must go through [`MonthId::try_from_ym`] or the
    /// [`FromStr`] impl instead.
    pub fn from_ym(year: i32, month: u8) -> Self {
        debug_assert!((1..=12).contains(&month), "month out of range: {month}");
        MonthId(year * 12 + i32::from(month) - 1)
    }

    /// Checked construction from a calendar year and 1-based month: the
    /// untrusted-input counterpart of [`MonthId::from_ym`], which only
    /// range-checks the month in debug builds.
    pub fn try_from_ym(year: i32, month: u8) -> Result<Self, MonthParseError> {
        if (1..=12).contains(&month) {
            Ok(MonthId(year * 12 + i32::from(month) - 1))
        } else {
            Err(MonthParseError(format!(
                "{year:04}-{month:02} (month must be 01..=12)"
            )))
        }
    }

    /// The calendar year.
    pub fn year(self) -> i32 {
        self.0.div_euclid(12)
    }

    /// The 1-based calendar month.
    pub fn month(self) -> u8 {
        (self.0.rem_euclid(12) + 1) as u8
    }

    /// Months elapsed since `earlier` (negative if `self` is earlier).
    pub fn months_since(self, earlier: MonthId) -> i32 {
        self.0 - earlier.0
    }

    /// The month `n` months after this one.
    pub fn plus(self, n: i32) -> MonthId {
        MonthId(self.0 + n)
    }
}

impl fmt::Display for MonthId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year(), self.month())
    }
}

/// Error from parsing or checked construction of a [`MonthId`]: the input
/// was not a `YYYY-MM` string with a month in `01..=12`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonthParseError(pub String);

impl fmt::Display for MonthParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid month: {} (expected YYYY-MM)", self.0)
    }
}

impl std::error::Error for MonthParseError {}

impl FromStr for MonthId {
    type Err = MonthParseError;

    /// Parses a strict `YYYY-MM` string with a checked month range. This is
    /// the parse path for untrusted input (`--at 2009-03`, `?asof=2009-03`);
    /// unlike [`MonthId::from_ym`], out-of-range months are an error in
    /// every build profile.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        let err = || MonthParseError(s.into());
        // Split on the *last* dash so negative years (`-0001-07`) parse.
        let (year_part, month_part) = trimmed.rsplit_once('-').ok_or_else(err)?;
        if year_part.is_empty() || month_part.len() != 2 {
            return Err(err());
        }
        let year: i32 = year_part.parse().map_err(|_| err())?;
        let month: u8 = month_part.parse().map_err(|_| err())?;
        MonthId::try_from_ym(year, month).map_err(|_| err())
    }
}

/// A calendar date (year, month, day). Day precision is kept only for
/// ordering versions within a month; all analysis happens on [`MonthId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    /// Calendar year (e.g. 2020).
    pub year: i32,
    /// 1-based month.
    pub month: u8,
    /// 1-based day.
    pub day: u8,
}

impl Date {
    /// Creates a date. Months/days outside their calendar range are clamped
    /// (tolerant ingestion beats panicking on a sloppy commit timestamp).
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        Date {
            year,
            month: month.clamp(1, 12),
            day: day.clamp(1, 31),
        }
    }

    /// The month this date falls in.
    pub fn month_id(self) -> MonthId {
        MonthId::from_ym(self.year, self.month)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Error parsing a date string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DateParseError(pub String);

impl fmt::Display for DateParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date: {}", self.0)
    }
}

impl std::error::Error for DateParseError {}

impl FromStr for Date {
    type Err = DateParseError;

    /// Parses `YYYY-MM-DD`, `YYYY-MM` (day defaults to 1) or `YYYY/MM/DD`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().replace('/', "-");
        let mut parts = norm.splitn(3, '-');
        let year: i32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| DateParseError(s.into()))?;
        let month: u8 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| DateParseError(s.into()))?;
        if !(1..=12).contains(&month) {
            return Err(DateParseError(s.into()));
        }
        let day: u8 = match parts.next() {
            None => 1,
            Some(p) => p.parse().map_err(|_| DateParseError(s.into()))?,
        };
        if !(1..=31).contains(&day) {
            return Err(DateParseError(s.into()));
        }
        Ok(Date::new(year, month, day))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_id_roundtrip() {
        let m = MonthId::from_ym(2021, 7);
        assert_eq!(m.year(), 2021);
        assert_eq!(m.month(), 7);
        assert_eq!(m.to_string(), "2021-07");
    }

    #[test]
    fn month_arithmetic_crosses_year_boundaries() {
        let dec = MonthId::from_ym(2019, 12);
        let feb = MonthId::from_ym(2020, 2);
        assert_eq!(feb.months_since(dec), 2);
        assert_eq!(dec.plus(2), feb);
        assert_eq!(dec.plus(-11), MonthId::from_ym(2019, 1));
    }

    #[test]
    fn negative_years_work() {
        let m = MonthId::from_ym(-1, 1);
        assert_eq!(m.year(), -1);
        assert_eq!(m.month(), 1);
    }

    #[test]
    fn try_from_ym_checks_the_month_in_every_profile() {
        assert_eq!(MonthId::try_from_ym(2009, 3), Ok(MonthId::from_ym(2009, 3)));
        assert_eq!(MonthId::try_from_ym(2009, 12), Ok(MonthId::from_ym(2009, 12)));
        // The silent release-mode wraparound `from_ym(2009, 13) == 2010-01`
        // must be an error on the checked path.
        assert!(MonthId::try_from_ym(2009, 13).is_err());
        assert!(MonthId::try_from_ym(2009, 0).is_err());
    }

    #[test]
    fn month_id_parses_strict_yyyy_mm() {
        assert_eq!("2009-03".parse::<MonthId>().unwrap(), MonthId::from_ym(2009, 3));
        assert_eq!(" 2021-12 ".parse::<MonthId>().unwrap(), MonthId::from_ym(2021, 12));
        assert_eq!("-0001-07".parse::<MonthId>().unwrap(), MonthId::from_ym(-1, 7));
        for bad in ["2009-13", "2009-00", "2009", "2009-3", "2009-03-01", "x-03", ""] {
            assert!(bad.parse::<MonthId>().is_err(), "{bad:?} should not parse");
        }
        let err = "2009-13".parse::<MonthId>().unwrap_err();
        assert!(err.to_string().contains("expected YYYY-MM"));
    }

    #[test]
    fn date_ordering_is_calendar_order() {
        let a = Date::new(2020, 3, 15);
        let b = Date::new(2020, 3, 16);
        let c = Date::new(2021, 1, 1);
        assert!(a < b && b < c);
        assert_eq!(a.month_id(), b.month_id());
    }

    #[test]
    fn parse_full_and_partial_dates() {
        assert_eq!("2020-05-09".parse::<Date>().unwrap(), Date::new(2020, 5, 9));
        assert_eq!("2020-05".parse::<Date>().unwrap(), Date::new(2020, 5, 1));
        assert_eq!("2020/05/09".parse::<Date>().unwrap(), Date::new(2020, 5, 9));
        assert_eq!(
            " 2020-05-09 ".parse::<Date>().unwrap(),
            Date::new(2020, 5, 9)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("not-a-date".parse::<Date>().is_err());
        assert!("2020-13-01".parse::<Date>().is_err());
        assert!("2020-00-01".parse::<Date>().is_err());
        assert!("2020-01-32".parse::<Date>().is_err());
        assert!("".parse::<Date>().is_err());
    }

    #[test]
    fn new_clamps_out_of_range() {
        let d = Date::new(2020, 0, 99);
        assert_eq!(d.month, 1);
        assert_eq!(d.day, 31);
    }
}
