//! Regenerates the §5.2 cohesion analysis.

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::stats52(&ctx);
    emit(
        "exp_stats52",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
