//! Property gate for the safety analyzer: over every seed-42 project and
//! every adjacent version pair, each op's lattice verdict must agree with
//! inverse existence, and every `Lossless` op's synthesized inverse must
//! round-trip the schema back to its exact normalized fingerprint.
//! Re-analysis must be deterministic: the rendered JSON of two independent
//! runs is byte-identical.

// Integration-test helpers sit outside `#[test]` fns, so clippy's
// allow-in-tests escape hatch does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use schemachron_corpus::Corpus;
use schemachron_dialect::diff_ops;
use schemachron_model::Schema;
use schemachron_safety::{
    analyze_history, apply_op, classify_op, fingerprint, inverse_matches_class, inverse_op,
    render, Safety,
};

#[test]
fn every_lossless_op_round_trips_and_verdicts_match_inverse_existence() {
    let corpus = Corpus::generate(42);
    let (mut ops_seen, mut lossless_seen) = (0usize, 0usize);
    for project in corpus.projects() {
        let history = project
            .history
            .schema_history()
            .expect("corpus projects are DDL-built");
        let empty = Schema::default();
        let mut prev = &empty;
        for version in history.versions() {
            let batch = diff_ops(prev, &version.schema);
            for op in &batch {
                ops_seen += 1;
                assert!(
                    inverse_matches_class(op, prev, &batch),
                    "{}: `{}` verdict disagrees with inverse existence",
                    project.card.name,
                    op.describe()
                );
                if classify_op(op, prev, &batch).safety != Safety::Lossless {
                    continue;
                }
                lossless_seen += 1;
                let inverse = inverse_op(op, prev, &batch)
                    .expect("lossless ops always synthesize an inverse");
                let mut schema = prev.clone();
                assert!(
                    apply_op(&mut schema, op),
                    "{}: `{}` does not apply to its own before-schema",
                    project.card.name,
                    op.describe()
                );
                for inv in &inverse {
                    assert!(
                        apply_op(&mut schema, inv),
                        "{}: inverse `{}` of `{}` does not apply",
                        project.card.name,
                        inv.describe(),
                        op.describe()
                    );
                }
                assert_eq!(
                    fingerprint(&schema),
                    fingerprint(prev),
                    "{}: `{}` inverse does not round-trip",
                    project.card.name,
                    op.describe()
                );
            }
            prev = &version.schema;
        }
    }
    // The corpus genuinely exercises the property — the sweep is not vacuous.
    assert!(ops_seen > 1000, "only {ops_seen} ops swept");
    assert!(lossless_seen > 500, "only {lossless_seen} lossless ops swept");
}

#[test]
fn re_analysis_is_deterministic() {
    let corpus = Corpus::generate(42);
    for project in corpus.projects().iter().take(8) {
        let history = project
            .history
            .schema_history()
            .expect("corpus projects are DDL-built");
        let a = serde_json::to_string_pretty(&render::safety_json(&analyze_history(
            &project.card.name,
            history,
        )))
        .unwrap();
        let b = serde_json::to_string_pretty(&render::safety_json(&analyze_history(
            &project.card.name,
            history,
        )))
        .unwrap();
        assert_eq!(a, b, "{}: analysis drifted between runs", project.card.name);
    }
}
