//! Runs the table-level rigidity census (beyond the paper).

use schemachron_bench::context::ExpContext;
use schemachron_bench::{emit, experiments, DEFAULT_SEED};

fn main() {
    let ctx = ExpContext::new(DEFAULT_SEED);
    let result = experiments::tables_exp(&ctx);
    emit(
        "exp_tables",
        &result.render(),
        &serde_json::to_value(&result).expect("serializable"),
    );
}
