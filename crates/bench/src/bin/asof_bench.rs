//! Time-travel lookup benchmark for the checkpointed as-of index.
//!
//! Answers "what did the schema look like in month m?" for **every month of
//! every project** in the seed-42 corpus, two ways:
//!
//! 1. **cold** — naive full replay: rebuild the schema from the project's
//!    birth forward for each queried month (no checkpoints; what a caller
//!    without the index would do);
//! 2. **warm** — the checkpointed index: binary-search the replay state,
//!    answer with a shared `Arc` once it is materialized (first contact
//!    replays at most K−1 months of deltas from the nearest checkpoint),
//!    with the index itself served from the pipeline stage cache.
//!
//! Runs the warm path at every checkpoint spacing K ∈ {1, 6, 12, 48} and
//! also times the index builds (the cost the cache amortizes). Writes
//! `BENCH_asof.json` at the workspace root and exits nonzero when the warm
//! lookup sweep is not at least 10x faster than cold full replay at the
//! default spacing (K = 12) — the property the checkpoints exist to provide.

use std::time::Instant;

use schemachron_asof::{index_for, AsOfArtifact};
use schemachron_corpus::{pipeline, Corpus};

/// Timing repetitions; the minimum is reported to damp scheduler noise.
const REPS: usize = 3;

/// The checkpoint spacings under test; 12 is the engine default.
const SPACINGS: [usize; 4] = [1, 6, 12, 48];

/// The spacing the speedup gate applies to.
const GATE_K: usize = 12;

/// Minimum cold/warm ratio the gate demands at [`GATE_K`].
const GATE_SPEEDUP: f64 = 10.0;

/// Sweeps every month of every project through `lookup`, returning
/// (elapsed ms, total tables seen). The table count both defeats
/// dead-code elimination and cross-checks that the two paths visit the
/// same schemas.
fn sweep<F>(indexes: &[std::sync::Arc<AsOfArtifact>], mut lookup: F) -> (f64, u64)
where
    F: FnMut(&AsOfArtifact, schemachron_history::MonthId) -> Option<u64>,
{
    let start = Instant::now();
    let mut tables: u64 = 0;
    for index in indexes {
        let index: &AsOfArtifact = index;
        let mut m = index.start();
        while m <= index.last_month() {
            if let Some(count) = lookup(index, m) {
                tables += count;
            }
            m = m.plus(1);
        }
    }
    (start.elapsed().as_secs_f64() * 1e3, tables)
}

fn main() {
    let seed = schemachron_bench::DEFAULT_SEED;
    let jobs = schemachron_corpus::effective_jobs();
    let corpus = Corpus::generate(seed);
    let projects = corpus.projects();
    let months: usize = projects
        .iter()
        .filter_map(|p| schemachron_asof::AsOfIndex::build(&p.history, 1))
        .map(|i| i.months())
        .sum();
    println!(
        "bench: asof    {} projects, {months} project-months, jobs {jobs}",
        projects.len()
    );

    let mut per_k = Vec::new();
    let mut cold_ms = f64::INFINITY;
    let mut cold_tables = 0;
    let mut gate_warm_ms = f64::INFINITY;

    for k in SPACINGS {
        // Index build, cold cache: the one-off cost a checkpoint spacing
        // buys its lookups with.
        let mut build_ms = f64::INFINITY;
        for _ in 0..REPS {
            pipeline::clear_stage_cache();
            let start = Instant::now();
            let built: usize = projects
                .iter()
                .filter_map(|p| index_for(p, seed, k))
                .count();
            build_ms = build_ms.min(start.elapsed().as_secs_f64() * 1e3);
            assert_eq!(built, projects.len());
        }

        // The cache is warm now: collecting the indexes is a pure lookup.
        let indexes: Vec<_> = projects
            .iter()
            .filter_map(|p| index_for(p, seed, k))
            .collect();
        let checkpoints: usize = indexes.iter().map(|i| i.checkpoint_count()).sum();

        // Cold baseline: naive full replay, measured once (it has no K).
        if cold_ms.is_infinite() {
            for _ in 0..REPS {
                let (ms, tables) =
                    sweep(&indexes, |i, m| i.schema_by_full_replay(m).map(|s| s.table_count() as u64));
                cold_ms = cold_ms.min(ms);
                cold_tables = tables;
            }
        }

        // Warm sweep: binary search + shared materialized replay states.
        let mut warm_ms = f64::INFINITY;
        let mut warm_tables = 0;
        for _ in 0..REPS {
            let (ms, tables) =
                sweep(&indexes, |i, m| i.schema_as_of(m).map(|s| s.table_count() as u64));
            warm_ms = warm_ms.min(ms);
            warm_tables = tables;
        }
        assert_eq!(
            warm_tables, cold_tables,
            "K={k}: the two lookup paths must visit identical schemas"
        );
        if k == GATE_K {
            gate_warm_ms = warm_ms;
        }

        let speedup = cold_ms / warm_ms;
        println!(
            "bench: asof    K={k:<3} build {build_ms:>9.3}ms  checkpoints {checkpoints:>5}  \
             warm sweep {warm_ms:>9.3}ms  vs cold {cold_ms:>9.3}ms  speedup {speedup:.1}x"
        );
        per_k.push(serde_json::json!({
            "k_months": k,
            "build_ms": build_ms,
            "checkpoints": checkpoints,
            "warm_lookup_ms": warm_ms,
            "speedup_vs_full_replay": speedup,
        }));
    }

    let report = serde_json::json!({
        "bench": "asof/checkpointed_lookup",
        "seed": seed,
        "jobs": jobs,
        "projects": (projects.len()),
        "project_months": months,
        "reps": REPS,
        "cold_full_replay_ms": cold_ms,
        "per_k": (serde_json::Value::Array(per_k)),
        "gate": {
            "k_months": GATE_K,
            "min_speedup": GATE_SPEEDUP,
            "warm_lookup_ms": gate_warm_ms,
            "speedup": (cold_ms / gate_warm_ms),
        },
    });
    // CARGO_MANIFEST_DIR = crates/bench, so ../.. is the workspace root.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_asof.json");
    match std::fs::write(out, serde_json::to_string_pretty(&report).unwrap()) {
        Ok(()) => println!("bench: wrote {out}"),
        Err(e) => eprintln!("bench: could not write {out}: {e}"),
    }

    if cold_ms < gate_warm_ms * GATE_SPEEDUP {
        eprintln!(
            "bench: FAIL — the K={GATE_K} warm sweep must be at least {GATE_SPEEDUP}x \
             faster than cold full replay ({gate_warm_ms:.3}ms vs {cold_ms:.3}ms)"
        );
        std::process::exit(1);
    }
}
