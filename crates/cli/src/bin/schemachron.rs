//! The `schemachron` binary: see `schemachron help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match schemachron_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}
